#include "dse/report.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/table.hpp"
#include "util/units.hpp"

namespace mnsim::dse {

using namespace mnsim::units;

std::vector<RadarEntry> normalized_radar(
    const std::vector<std::pair<std::string, EvaluatedDesign>>& designs) {
  if (designs.empty())
    throw std::invalid_argument("normalized_radar: no designs");
  std::vector<RadarEntry> entries;
  entries.reserve(designs.size());
  for (const auto& [label, d] : designs) {
    RadarEntry e;
    e.label = label;
    e.point = d.point;
    e.reciprocal_area = 1.0 / d.metrics.area;
    e.energy_efficiency = 1.0 / d.metrics.energy_per_sample;
    e.reciprocal_power = 1.0 / d.metrics.power;
    e.speed = 1.0 / d.metrics.latency;
    e.accuracy = 1.0 - d.metrics.max_error_rate;
    entries.push_back(e);
  }
  auto normalize = [&](double RadarEntry::*field) {
    double max_v = 0.0;
    for (const auto& e : entries) max_v = std::max(max_v, e.*field);
    if (max_v <= 0) return;
    for (auto& e : entries) e.*field /= max_v;
  };
  normalize(&RadarEntry::reciprocal_area);
  normalize(&RadarEntry::energy_efficiency);
  normalize(&RadarEntry::reciprocal_power);
  normalize(&RadarEntry::speed);
  // Accuracy is already in [0, 1]; the paper normalizes only the other
  // four factors.
  return entries;
}

std::string format_optima_table(const ExplorationResult& result,
                                const std::string& title) {
  util::Table table(title);
  table.set_header({"Metric", "Area", "Energy", "Latency", "Accuracy"});

  const Objective objectives[] = {Objective::kArea, Objective::kEnergy,
                                  Objective::kLatency, Objective::kAccuracy};
  std::vector<EvaluatedDesign> best;
  for (Objective o : objectives) {
    auto b = result.best(o);
    if (!b)
      throw std::runtime_error(
          "format_optima_table: no feasible design under constraint");
    best.push_back(*b);
  }

  auto row = [&](const std::string& name, auto getter, int digits) {
    std::vector<std::string> cells = {name};
    for (const auto& d : best) cells.push_back(util::Table::num(getter(d), digits));
    table.add_row(std::move(cells));
  };
  row("Area (mm^2)",
      [](const EvaluatedDesign& d) { return d.metrics.area / mm2; }, 2);
  row("Energy per Sample (uJ)",
      [](const EvaluatedDesign& d) { return d.metrics.energy_per_sample / uJ; },
      3);
  row("Latency (us)",
      [](const EvaluatedDesign& d) { return d.metrics.latency / us; }, 4);
  row("Error Rate of Output (%)",
      [](const EvaluatedDesign& d) { return 100.0 * d.metrics.max_error_rate; },
      2);
  row("Power (W)",
      [](const EvaluatedDesign& d) { return d.metrics.power; }, 3);
  row("Crossbar Size",
      [](const EvaluatedDesign& d) { return double(d.point.crossbar_size); },
      0);
  row("Line Tech Node (nm)",
      [](const EvaluatedDesign& d) { return double(d.point.interconnect_node); },
      0);
  row("Parallelism Degree",
      [](const EvaluatedDesign& d) {
        return double(d.point.parallelism == 0 ? d.point.crossbar_size
                                               : d.point.parallelism);
      },
      0);
  return table.str();
}

}  // namespace mnsim::dse
