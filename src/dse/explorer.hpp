// Exhaustive design-space exploration (paper Sec. VII-C/D).
//
// Evaluates every design point with the behavior-level models, filters by
// the computing-error constraint, and reports the optimum per objective —
// the content of Tables IV and VI — plus the trade-off series behind
// Figs. 7 and 8.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "check/diagnostic.hpp"
#include "dse/space.hpp"

namespace mnsim::dse {

// kStalls and kTraffic come from the cycle-level engine and are only
// populated when `base.cycle_enabled` is set — with the engine off they
// stay 0 and selecting on them degenerates to area tie-breaking.
enum class Objective { kArea, kEnergy, kLatency, kAccuracy, kPower,
                       kStalls, kTraffic };

struct DesignMetrics {
  double area = 0.0;              // [m^2]
  double energy_per_sample = 0.0; // [J]
  double latency = 0.0;           // pipeline-cycle latency [s]
  double sample_latency = 0.0;    // full sample [s]
  double power = 0.0;             // [W]
  double max_error_rate = 0.0;    // worst-case digital error (Eq. 13)
  double avg_error_rate = 0.0;    // average digital error (Eq. 14)
  int solver_fallbacks = 0;       // degraded circuit solves (CG retry + LU)
  int faults_injected = 0;        // hard defects injected by the fault model
  // Cycle-level memory-hierarchy metrics ([cycle] Enabled; 0 otherwise).
  double stall_fraction = 0.0;    // stall cycles / makespan cycles
  double backing_traffic = 0.0;   // backing-store bytes per sample

  [[nodiscard]] double objective_value(Objective objective) const;
};

// Feasibility region: error is the paper's constraint; area, power and
// latency budgets support the inverse questions ("best accuracy within
// 50 mm^2 and 5 W").
struct Constraints {
  double max_error = 0.25;
  double max_area = 0.0;     // [m^2]; <= 0 means unconstrained
  double max_power = 0.0;    // [W];   <= 0 means unconstrained
  double max_latency = 0.0;  // [s];   <= 0 means unconstrained

  [[nodiscard]] bool admits(const DesignMetrics& metrics) const;
  void validate() const;
};

struct EvaluatedDesign {
  DesignPoint point;
  DesignMetrics metrics;
  bool feasible = false;  // meets all constraints
  bool evaluated = true;  // false when simulation threw (see `failure`)
  std::string failure;    // diagnostic message of the failed evaluation
};

struct ExplorationResult {
  std::vector<EvaluatedDesign> designs;
  double error_constraint = 0.25;
  long feasible_count = 0;
  long failed_count = 0;  // points whose simulation threw (kept, infeasible)

  // Non-fatal findings about the exploration itself — e.g. MN-DSE-006
  // when every point failed. Kept on the result (not thrown) so partial
  // data survives for diagnosis; callers decide the exit status.
  std::vector<check::Diagnostic> diagnostics;

  // Best feasible design for one objective; ties broken by area.
  // Returns nullopt when nothing is feasible.
  [[nodiscard]] std::optional<EvaluatedDesign> best(
      Objective objective) const;

  // 2-D Pareto front over (latency, area) among feasible designs — the
  // Fig. 8 trade-off curve, sorted by latency.
  [[nodiscard]] std::vector<EvaluatedDesign> latency_area_pareto() const;

  // Full 4-D Pareto front (area, energy, latency, error): feasible
  // designs not dominated on all four objectives simultaneously.
  [[nodiscard]] std::vector<EvaluatedDesign> pareto_front() const;

  // The paper's trade-off analysis: "a compromised result among all
  // performance factors". Scores every feasible design by the weighted
  // geometric mean of its per-objective values normalized to the best
  // feasible value of each objective (lower is better on every axis) and
  // returns the minimizer. Weights default to equal; zero weight drops
  // an objective.
  struct CompromiseWeights {
    double area = 1.0;
    double energy = 1.0;
    double latency = 1.0;
    double accuracy = 1.0;  // weight on the error rate
  };
  [[nodiscard]] std::optional<EvaluatedDesign> compromise(
      const CompromiseWeights& weights) const;
  [[nodiscard]] std::optional<EvaluatedDesign> compromise() const {
    return compromise(CompromiseWeights{});
  }
};

// Evaluates the network over the whole space; `base` supplies every
// parameter the space does not sweep.
ExplorationResult explore(const nn::Network& network,
                          const arch::AcceleratorConfig& base,
                          const DesignSpace& space,
                          const Constraints& constraints);
// Error-only convenience (the paper's constraint form).
ExplorationResult explore(const nn::Network& network,
                          const arch::AcceleratorConfig& base,
                          const DesignSpace& space, double error_constraint);

// Evaluates one point (the explore() kernel, exposed for benches/tests).
EvaluatedDesign evaluate_design(const nn::Network& network,
                                const arch::AcceleratorConfig& base,
                                const DesignPoint& point,
                                const Constraints& constraints);

}  // namespace mnsim::dse
