// Design space definition (paper Sec. VII-C).
//
// The case studies sweep three unit-level knobs while everything else is
// fixed: crossbar size (4..1024, doubling), computation parallelism
// degree (1..crossbar size, doubling; the number of read circuits per
// crossbar), and interconnect technology node ({18,22,28,36,45} nm,
// extended to 90 nm for the CNN study). The traversal enumerates every
// combination — MNSIM's simulation speed makes exhaustive search cheap.
#pragma once

#include <vector>

namespace mnsim::dse {

struct DesignPoint {
  int crossbar_size = 128;
  int parallelism = 0;        // 0 = all columns in parallel
  int interconnect_node = 28; // nm
};

struct DesignSpace {
  std::vector<int> crossbar_sizes = {4, 8, 16, 32, 64, 128, 256, 512, 1024};
  std::vector<int> parallelism_degrees = {1, 2, 4, 8, 16, 32, 64, 128, 0};
  std::vector<int> interconnect_nodes = {18, 22, 28, 36, 45};

  // All combinations, with parallelism degrees exceeding the crossbar
  // size dropped (they alias the full-parallel point).
  [[nodiscard]] std::vector<DesignPoint> enumerate() const;

  // The paper's large-bank sweep; ~10^4 designs.
  static DesignSpace paper_default();
  // The CNN study: interconnect extended to 90 nm.
  static DesignSpace paper_cnn();
};

}  // namespace mnsim::dse
