// One-at-a-time sensitivity analysis.
//
// Around a base design point, each swept knob (crossbar size,
// parallelism, interconnect node) is moved one step in each direction
// and the induced relative change of every metric is recorded — the
// local elasticities a designer reads before committing to a full
// exploration, and a quick sanity check that the models respond in the
// expected directions.
#pragma once

#include <string>
#include <vector>

#include "dse/explorer.hpp"

namespace mnsim::dse {

struct SensitivityEntry {
  std::string knob;          // "crossbar_size", "parallelism", ...
  DesignPoint varied_point;  // the neighbouring point evaluated
  // Relative metric changes vs the base point: (varied - base) / base.
  double d_area = 0.0;
  double d_energy = 0.0;
  double d_latency = 0.0;
  double d_error = 0.0;
};

struct SensitivityReport {
  DesignPoint base_point;
  DesignMetrics base_metrics;
  std::vector<SensitivityEntry> entries;
};

// Doubles/halves the crossbar size and parallelism and steps the
// interconnect node through the sweep list around `point`. Neighbours
// falling outside valid ranges are skipped.
SensitivityReport analyze_sensitivity(const nn::Network& network,
                                      const arch::AcceleratorConfig& base,
                                      const DesignPoint& point);

}  // namespace mnsim::dse
