#include "dse/sensitivity.hpp"

#include <algorithm>

#include "tech/interconnect.hpp"

namespace mnsim::dse {

namespace {

SensitivityEntry diff(const std::string& knob, const DesignMetrics& base,
                      const EvaluatedDesign& varied) {
  SensitivityEntry e;
  e.knob = knob;
  e.varied_point = varied.point;
  auto rel = [](double v, double b) { return b != 0.0 ? (v - b) / b : 0.0; };
  e.d_area = rel(varied.metrics.area, base.area);
  e.d_energy = rel(varied.metrics.energy_per_sample, base.energy_per_sample);
  e.d_latency = rel(varied.metrics.latency, base.latency);
  e.d_error = rel(varied.metrics.max_error_rate, base.max_error_rate);
  return e;
}

}  // namespace

SensitivityReport analyze_sensitivity(const nn::Network& network,
                                      const arch::AcceleratorConfig& base,
                                      const DesignPoint& point) {
  Constraints unconstrained;
  unconstrained.max_error = 1.0;  // record everything

  SensitivityReport report;
  report.base_point = point;
  report.base_metrics =
      evaluate_design(network, base, point, unconstrained).metrics;

  auto probe = [&](const std::string& knob, DesignPoint varied) {
    report.entries.push_back(
        diff(knob, report.base_metrics,
             evaluate_design(network, base, varied, unconstrained)));
  };

  // Crossbar size: halve / double within [4, 1024].
  if (point.crossbar_size / 2 >= 4) {
    DesignPoint p = point;
    p.crossbar_size /= 2;
    p.parallelism = std::min(p.parallelism, p.crossbar_size);
    probe("crossbar_size/2", p);
  }
  if (point.crossbar_size * 2 <= 1024) {
    DesignPoint p = point;
    p.crossbar_size *= 2;
    probe("crossbar_size*2", p);
  }

  // Parallelism: halve / double (0 = full parallel has no 'up' step).
  const int effective = point.parallelism == 0 ? point.crossbar_size
                                               : point.parallelism;
  if (effective / 2 >= 1) {
    DesignPoint p = point;
    p.parallelism = effective / 2;
    probe("parallelism/2", p);
  }
  if (point.parallelism != 0 && effective * 2 <= point.crossbar_size) {
    DesignPoint p = point;
    p.parallelism = effective * 2;
    probe("parallelism*2", p);
  }

  // Interconnect node: step through the paper sweep list.
  const auto& nodes = tech::kInterconnectSweep;
  const auto* it =
      std::find(std::begin(nodes), std::end(nodes), point.interconnect_node);
  if (it != std::end(nodes)) {
    if (it != std::begin(nodes)) {
      DesignPoint p = point;
      p.interconnect_node = *(it - 1);  // finer wires
      probe("interconnect_finer", p);
    }
    if (it + 1 != std::end(nodes)) {
      DesignPoint p = point;
      p.interconnect_node = *(it + 1);  // coarser wires
      probe("interconnect_coarser", p);
    }
  }
  return report;
}

}  // namespace mnsim::dse
