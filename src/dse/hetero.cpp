#include "dse/hetero.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "arch/computation_bank.hpp"

namespace mnsim::dse {

namespace {

struct Candidate {
  DesignPoint point;
  double objective = 0.0;  // per-bank objective value (lower is better)
  double log_error = 0.0;  // log(1 + eps_worst), additive under Eq. 15
};

double bank_objective(const arch::BankReport& bank, Objective objective) {
  switch (objective) {
    case Objective::kArea:
      return bank.area;
    case Objective::kEnergy:
    case Objective::kPower:
      return bank.energy_per_sample;
    case Objective::kLatency:
      // Sum of pass latencies is the greedy proxy for the pipeline cycle
      // (the max); the final report uses the exact maximum.
      return bank.pass_latency;
    case Objective::kAccuracy:
      return bank.epsilon_worst;
    case Objective::kStalls:
    case Objective::kTraffic:
      // Cycle-level objectives are whole-pipeline properties (a bank's
      // stalls depend on its neighbours) — no per-bank greedy proxy.
      throw std::invalid_argument(
          "optimize_per_bank: stall/traffic objectives need the whole "
          "pipeline; use explore() with [cycle] Enabled");
  }
  throw std::logic_error("bank_objective: unreachable");
}

}  // namespace

HeteroResult optimize_per_bank(const nn::Network& network,
                               const arch::AcceleratorConfig& base,
                               const DesignSpace& space, Objective objective,
                               double error_constraint) {
  network.validate();
  if (!(error_constraint > 0))
    throw std::invalid_argument("optimize_per_bank: error constraint");

  // Gather banks exactly as the accelerator does.
  std::vector<const nn::Layer*> weighted;
  std::vector<const nn::Layer*> pooling_after;
  for (const auto& layer : network.layers) {
    if (layer.is_weighted()) {
      weighted.push_back(&layer);
      pooling_after.push_back(nullptr);
    } else if (layer.kind == nn::LayerKind::kPooling && !weighted.empty()) {
      pooling_after.back() = &layer;
    }
  }

  HeteroResult result;
  const auto points = space.enumerate();

  // Evaluate every candidate per bank.
  std::vector<std::vector<Candidate>> candidates(weighted.size());
  for (std::size_t b = 0; b < weighted.size(); ++b) {
    const nn::Layer* next = b + 1 < weighted.size() ? weighted[b + 1]
                                                    : nullptr;
    for (const auto& point : points) {
      arch::AcceleratorConfig cfg = base;
      cfg.crossbar_size = point.crossbar_size;
      cfg.parallelism = point.parallelism;
      cfg.interconnect_node_nm = point.interconnect_node;
      const auto bank = arch::simulate_bank(*weighted[b], pooling_after[b],
                                            next, network, cfg);
      ++result.bank_evaluations;
      candidates[b].push_back({point, bank_objective(bank, objective),
                               std::log1p(bank.epsilon_worst)});
    }
  }

  // Start every bank at its unconstrained optimum.
  std::vector<std::size_t> choice(weighted.size(), 0);
  for (std::size_t b = 0; b < weighted.size(); ++b) {
    for (std::size_t c = 1; c < candidates[b].size(); ++c) {
      if (candidates[b][c].objective <
          candidates[b][choice[b]].objective)
        choice[b] = c;
    }
  }

  // Greedy repair: while the accumulated error exceeds the budget, take
  // the cheapest error-reducing move (objective cost per unit of
  // log-error reduction).
  const double log_budget = std::log1p(error_constraint);
  auto total_log_error = [&] {
    double s = 0.0;
    for (std::size_t b = 0; b < weighted.size(); ++b)
      s += candidates[b][choice[b]].log_error;
    return s;
  };

  const std::size_t max_moves = 64 * weighted.size() * points.size() + 64;
  std::size_t moves = 0;
  while (total_log_error() > log_budget && moves++ < max_moves) {
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_bank = 0;
    std::size_t best_candidate = 0;
    bool found = false;
    for (std::size_t b = 0; b < weighted.size(); ++b) {
      const Candidate& current = candidates[b][choice[b]];
      for (std::size_t c = 0; c < candidates[b].size(); ++c) {
        const Candidate& cand = candidates[b][c];
        const double reduction = current.log_error - cand.log_error;
        if (!(reduction > 0)) continue;
        const double cost = cand.objective - current.objective;
        const double ratio = cost / reduction;
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best_bank = b;
          best_candidate = c;
          found = true;
        }
      }
    }
    if (!found) break;  // no error-reducing move left
    choice[best_bank] = best_candidate;
  }

  // Materialize the chosen configuration and simulate exactly.
  std::vector<arch::AcceleratorConfig> configs;
  configs.reserve(weighted.size());
  for (std::size_t b = 0; b < weighted.size(); ++b) {
    const auto& point = candidates[b][choice[b]].point;
    arch::AcceleratorConfig cfg = base;
    cfg.crossbar_size = point.crossbar_size;
    cfg.parallelism = point.parallelism;
    cfg.interconnect_node_nm = point.interconnect_node;
    configs.push_back(cfg);
    result.per_bank.push_back(point);
  }
  result.report = arch::simulate_accelerator(network, configs);
  result.feasible = result.report.max_error_rate <= error_constraint;
  return result;
}

}  // namespace mnsim::dse
