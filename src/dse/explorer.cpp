#include "dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "arch/cycle_sim.hpp"
#include "check/config_check.hpp"
#include "check/network_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace mnsim::dse {

double DesignMetrics::objective_value(Objective objective) const {
  switch (objective) {
    case Objective::kArea:
      return area;
    case Objective::kEnergy:
      return energy_per_sample;
    case Objective::kLatency:
      return latency;
    case Objective::kAccuracy:
      return max_error_rate;
    case Objective::kPower:
      return power;
    case Objective::kStalls:
      return stall_fraction;
    case Objective::kTraffic:
      return backing_traffic;
  }
  throw std::logic_error("objective_value: unreachable");
}

bool Constraints::admits(const DesignMetrics& m) const {
  if (m.max_error_rate > max_error) return false;
  if (max_area > 0 && m.area > max_area) return false;
  if (max_power > 0 && m.power > max_power) return false;
  if (max_latency > 0 && m.latency > max_latency) return false;
  return true;
}

void Constraints::validate() const {
  if (!(max_error > 0))
    throw std::invalid_argument("Constraints: max_error must be positive");
}

EvaluatedDesign evaluate_design(const nn::Network& network,
                                const arch::AcceleratorConfig& base,
                                const DesignPoint& point,
                                const Constraints& constraints) {
  obs::Span span("dse.evaluate");
  constraints.validate();
  arch::AcceleratorConfig cfg = base;
  cfg.crossbar_size = point.crossbar_size;
  cfg.parallelism = point.parallelism;
  cfg.interconnect_node_nm = point.interconnect_node;
  const auto report = arch::simulate_accelerator(network, cfg);

  EvaluatedDesign out;
  out.point = point;
  out.metrics.area = report.area;
  out.metrics.energy_per_sample = report.energy_per_sample;
  out.metrics.latency = report.pipeline_cycle;
  out.metrics.sample_latency = report.sample_latency;
  out.metrics.power = report.power;
  out.metrics.max_error_rate = report.max_error_rate;
  out.metrics.avg_error_rate = report.avg_error_rate;
  out.metrics.solver_fallbacks =
      report.solver.cg_retries + report.solver.lu_fallbacks;
  out.metrics.faults_injected = report.solver.faults_injected;
  // Cycle-level memory-hierarchy metrics ride along when the engine is
  // armed; simulate_cycles is deterministic, so the parallel sweep stays
  // bit-identical.
  if (cfg.cycle_enabled) {
    const auto cycles = arch::simulate_cycles(report, cfg);
    out.metrics.stall_fraction = cycles.stall_fraction;
    out.metrics.backing_traffic = cycles.backing_traffic_bytes;
  }
  out.feasible = constraints.admits(out.metrics);
  return out;
}

ExplorationResult explore(const nn::Network& network,
                          const arch::AcceleratorConfig& base,
                          const DesignSpace& space,
                          const Constraints& constraints) {
  constraints.validate();
  // Pre-flight the parts shared by every design point: the network's
  // structure and the base configuration's consistency. Mapping
  // feasibility is deliberately left to the per-point evaluation — the
  // points override exactly the geometry a mapping check would use, and
  // an unmappable point records as failed-infeasible, not an abort.
  if (base.check_preflight) {
    check::DiagnosticList diags = check::check_network(network);
    diags.merge(check::check_config_consistency(base));
    if (base.check_warnings_as_errors) diags.promote_warnings();
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
  }
  obs::Span explore_span("dse.explore");
  ExplorationResult result;
  result.error_constraint = constraints.max_error;
  const std::vector<DesignPoint> points = [&] {
    obs::Span span("dse.enumerate");
    return space.enumerate();
  }();
  // One task per design point. evaluate_design is a pure function of
  // (network, base, point), so the parallel sweep is bit-identical to
  // the serial loop; parallel_map keeps enumeration order. A
  // pathological point (solver failure, invalid derived geometry) must
  // not abort the sweep: record it as failed-infeasible and continue so
  // every other design still gets evaluated — same semantics per task
  // as the serial try/catch had.
  util::ThreadPool pool(base.parallel_threads);
  result.designs = util::parallel_map(
      pool, points.size(), [&](std::size_t i, std::size_t) {
        obs::Span point_span("dse.design_point");
        try {
          return evaluate_design(network, base, points[i], constraints);
        } catch (const std::exception& e) {
          EvaluatedDesign failed;
          failed.point = points[i];
          failed.feasible = false;
          failed.evaluated = false;
          failed.failure = e.what();
          return failed;
        }
      });
  for (const auto& d : result.designs) {
    if (!d.evaluated) ++result.failed_count;
    if (d.feasible) ++result.feasible_count;
  }
  // Every point failing is almost always an input problem (bad base
  // config, unmappable network), not five hundred independent solver
  // accidents. Surface it as a typed diagnostic on the result — not a
  // throw, so the per-point failure messages survive for diagnosis.
  if (!result.designs.empty() &&
      result.failed_count == static_cast<long>(result.designs.size())) {
    check::Diagnostic d;
    d.code = "MN-DSE-006";
    d.severity = check::Severity::kError;
    d.message = "every design point of the exploration failed";
    d.hint = "first failure: " + result.designs.front().failure;
    result.diagnostics.push_back(std::move(d));
  }
  obs::Registry& reg = obs::Registry::global();
  reg.add("dse.design_points", static_cast<long>(result.designs.size()));
  reg.add("dse.feasible_points", result.feasible_count);
  reg.add("dse.failed_points", result.failed_count);
  return result;
}

ExplorationResult explore(const nn::Network& network,
                          const arch::AcceleratorConfig& base,
                          const DesignSpace& space, double error_constraint) {
  Constraints constraints;
  constraints.max_error = error_constraint;
  return explore(network, base, space, constraints);
}

std::optional<EvaluatedDesign> ExplorationResult::best(
    Objective objective) const {
  std::optional<EvaluatedDesign> best;
  for (const auto& d : designs) {
    if (!d.feasible) continue;
    if (!best) {
      best = d;
      continue;
    }
    const double v = d.metrics.objective_value(objective);
    const double bv = best->metrics.objective_value(objective);
    if (v < bv || (v == bv && d.metrics.area < best->metrics.area)) best = d;
  }
  return best;
}

std::vector<EvaluatedDesign> ExplorationResult::pareto_front() const {
  auto dominates = [](const DesignMetrics& a, const DesignMetrics& b) {
    const bool no_worse = a.area <= b.area &&
                          a.energy_per_sample <= b.energy_per_sample &&
                          a.latency <= b.latency &&
                          a.max_error_rate <= b.max_error_rate;
    const bool better = a.area < b.area ||
                        a.energy_per_sample < b.energy_per_sample ||
                        a.latency < b.latency ||
                        a.max_error_rate < b.max_error_rate;
    return no_worse && better;
  };
  std::vector<EvaluatedDesign> front;
  for (const auto& d : designs) {
    if (!d.feasible) continue;
    bool dominated = false;
    for (const auto& other : designs) {
      if (!other.feasible) continue;
      if (dominates(other.metrics, d.metrics)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(d);
  }
  return front;
}

std::optional<EvaluatedDesign> ExplorationResult::compromise(
    const CompromiseWeights& w) const {
  if (w.area < 0 || w.energy < 0 || w.latency < 0 || w.accuracy < 0)
    throw std::invalid_argument("compromise: weights must be >= 0");
  const double weight_sum = w.area + w.energy + w.latency + w.accuracy;
  if (!(weight_sum > 0))
    throw std::invalid_argument("compromise: all weights zero");

  // Per-objective best feasible values for normalization.
  DesignMetrics best{};
  bool any = false;
  for (const auto& d : designs) {
    if (!d.feasible) continue;
    if (!any) {
      best = d.metrics;
      any = true;
      continue;
    }
    best.area = std::min(best.area, d.metrics.area);
    best.energy_per_sample =
        std::min(best.energy_per_sample, d.metrics.energy_per_sample);
    best.latency = std::min(best.latency, d.metrics.latency);
    best.max_error_rate =
        std::min(best.max_error_rate, d.metrics.max_error_rate);
  }
  if (!any) return std::nullopt;

  std::optional<EvaluatedDesign> winner;
  double winner_score = 0.0;
  for (const auto& d : designs) {
    if (!d.feasible) continue;
    // Epsilon-floored normalization: a best-feasible reference of
    // exactly 0 (e.g. a zero-latency degenerate design) must still let
    // the objective discriminate — value/0 is unusable, but mapping the
    // ratio to 1.0 silently zeroed the objective's weight for every
    // design. With the floor, designs matching the zero reference score
    // ~1 and everything else is charged the full ratio.
    auto ratio = [](double value, double reference) {
      constexpr double eps = 1e-12;
      return (value + eps) / (reference + eps);
    };
    const double score =
        (w.area * std::log(ratio(d.metrics.area, best.area)) +
         w.energy * std::log(ratio(d.metrics.energy_per_sample,
                                   best.energy_per_sample)) +
         w.latency * std::log(ratio(d.metrics.latency, best.latency)) +
         w.accuracy * std::log(ratio(d.metrics.max_error_rate + 1e-6,
                                     best.max_error_rate + 1e-6))) /
        weight_sum;
    if (!winner || score < winner_score) {
      winner = d;
      winner_score = score;
    }
  }
  return winner;
}

std::vector<EvaluatedDesign> ExplorationResult::latency_area_pareto() const {
  std::vector<EvaluatedDesign> feasible;
  for (const auto& d : designs)
    if (d.feasible) feasible.push_back(d);
  std::sort(feasible.begin(), feasible.end(),
            [](const EvaluatedDesign& a, const EvaluatedDesign& b) {
              if (a.metrics.latency != b.metrics.latency)
                return a.metrics.latency < b.metrics.latency;
              return a.metrics.area < b.metrics.area;
            });
  std::vector<EvaluatedDesign> front;
  double best_area = std::numeric_limits<double>::infinity();
  for (const auto& d : feasible) {
    if (d.metrics.area < best_area) {
      front.push_back(d);
      best_area = d.metrics.area;
    }
  }
  return front;
}

}  // namespace mnsim::dse
