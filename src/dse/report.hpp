// Exploration reporting: the normalized five-axis comparison of Fig. 9
// and table renderings of exploration results.
#pragma once

#include <string>
#include <vector>

#include "dse/explorer.hpp"

namespace mnsim::dse {

// One pentagon of Fig. 9: reciprocal area, energy efficiency, reciprocal
// power, speed (reciprocal latency), and accuracy, each normalized by the
// maximum across the compared designs (so every axis is in (0, 1]).
struct RadarEntry {
  std::string label;
  DesignPoint point;
  double reciprocal_area = 0.0;
  double energy_efficiency = 0.0;
  double reciprocal_power = 0.0;
  double speed = 0.0;
  double accuracy = 0.0;
};

std::vector<RadarEntry> normalized_radar(
    const std::vector<std::pair<std::string, EvaluatedDesign>>& designs);

// Renders an exploration's per-objective optima as the paper's Table IV /
// Table VI layout (one column per optimization target).
std::string format_optima_table(const ExplorationResult& result,
                                const std::string& title);

}  // namespace mnsim::dse
