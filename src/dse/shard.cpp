#include "dse/shard.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
// lint: allow-thread-include(watchdog supervisor thread; construction carries a raw-thread analyzer escape below)
#include <thread>
#include <unordered_map>

#include "check/config_check.hpp"
#include "check/network_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/thread_safety.hpp"

// The watchdog below measures wall clock on purpose: deadlines are
// execution policy (bounds on solver work), not instrumentation, and an
// obs::Span cannot cancel anything.
// lint: allow-raw-chrono(watchdog deadline enforcement, not timing)
#include <chrono>

namespace mnsim::dse {

namespace {

// lint: allow-raw-chrono(watchdog deadline enforcement, not timing)
using SteadyClock = std::chrono::steady_clock;

[[noreturn]] void reject(const std::string& code, const std::string& message,
                         const std::string& file, const std::string& hint) {
  check::DiagnosticList diags;
  auto& d = diags.emit(code, check::Severity::kError, message);
  d.file = file;
  d.hint = hint;
  throw check::CheckError(std::move(diags));
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return static_cast<bool>(f);
}

// Per-point deadline enforcement: one background thread scans the
// armed per-worker slots and requests cooperative cancellation on the
// tokens whose deadline passed. The solver ladder polls the token
// (util/cancel.hpp) and unwinds with CancelledError.
class Watchdog {
 public:
  Watchdog(double deadline_ms, std::size_t slots)
      : deadline_ms_(deadline_ms), entries_(slots) {
    // A pool task cannot detect the pool's own threads wedging, so the
    // scanner runs on a dedicated thread, joined in ~Watchdog.
    // mnsim-analyze: allow(raw-thread, watchdog scans independently of the pool it supervises; joined in ~Watchdog)
    if (enabled()) scanner_ = std::thread([this] { loop(); });
  }

  ~Watchdog() {
    if (scanner_.joinable()) {
      {
        const util::MutexLock lock(mutex_);
        stop_ = true;
      }
      cv_.notify_all();
      scanner_.join();
    }
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  [[nodiscard]] bool enabled() const { return deadline_ms_ > 0; }

  void arm(std::size_t slot, util::CancelToken* token) {
    if (!enabled()) return;
    const util::MutexLock lock(mutex_);
    entries_[slot].token = token;
    entries_[slot].deadline =
        SteadyClock::now() +
        // lint: allow-raw-chrono(watchdog deadline enforcement, not timing)
        std::chrono::microseconds(static_cast<long>(deadline_ms_ * 1000.0));
  }

  // After disarm() returns the scanner holds no reference to the token.
  void disarm(std::size_t slot) {
    if (!enabled()) return;
    const util::MutexLock lock(mutex_);
    entries_[slot].token = nullptr;
  }

 private:
  struct Entry {
    util::CancelToken* token = nullptr;
    SteadyClock::time_point deadline;
  };

  void loop() {
    // Scan at an eighth of the deadline, clamped to [1, 50] ms: fine
    // enough that expiry lands within ~12% of the configured deadline,
    // coarse enough to be free next to solver work.
    const double poll_ms = std::min(50.0, std::max(1.0, deadline_ms_ / 8.0));
    const util::MutexLock lock(mutex_);
    while (!stop_) {
      // lint: allow-raw-chrono(watchdog deadline enforcement, not timing)
      cv_.wait_for(mutex_, std::chrono::microseconds(
                               static_cast<long>(poll_ms * 1000.0)));
      const SteadyClock::time_point now = SteadyClock::now();
      for (Entry& e : entries_) {
        if (e.token != nullptr && now >= e.deadline) {
          e.token->request();
          e.token = nullptr;  // one cancellation per armed attempt
        }
      }
    }
  }

  const double deadline_ms_;
  // mnsim-analyze: allow(raw-thread, owned member thread of the supervisor; see constructor note)
  std::thread scanner_;
  util::Mutex mutex_;
  std::condition_variable_any cv_;
  std::vector<Entry> entries_ MN_GUARDED_BY(mutex_);
  bool stop_ MN_GUARDED_BY(mutex_) = false;
};

// RAII arm/disarm so every exit path (return, throw) disarms before the
// token leaves scope.
class WatchdogArm {
 public:
  WatchdogArm(Watchdog& watchdog, std::size_t slot, util::CancelToken* token)
      : watchdog_(watchdog), slot_(slot) {
    watchdog_.arm(slot_, token);
  }
  ~WatchdogArm() { watchdog_.disarm(slot_); }
  WatchdogArm(const WatchdogArm&) = delete;
  WatchdogArm& operator=(const WatchdogArm&) = delete;

 private:
  Watchdog& watchdog_;
  std::size_t slot_;
};

// Thread-safe facade over the strictly-one-writer DurableAppender for
// the completion-order appends of the parallel sweep loop. Clang's
// thread-safety analysis cannot annotate function-local mutexes, so the
// mutex/appender pair lives in a class with the guarded-by contract
// spelled out.
class CheckpointJournal {
 public:
  // Serial phase (before the pool starts); locked anyway so the guarded
  // appender has one unconditional access rule.
  void open(const std::string& path, bool truncate) MN_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    appender_.open(path, truncate);
  }

  // Called concurrently from pool workers; appends land in completion
  // order, which is fine — assembly re-sorts by global index.
  void append(const std::string& data) MN_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    appender_.append(data);
  }

 private:
  util::Mutex mutex_;
  util::DurableAppender appender_ MN_GUARDED_BY(mutex_);
};

EvaluatedDesign failed_design(const DesignPoint& point,
                              const std::string& why) {
  EvaluatedDesign d;
  d.point = point;
  d.feasible = false;
  d.evaluated = false;
  d.failure = why;
  return d;
}

// The bounded-retry-then-quarantine protocol for one design point.
CheckpointRecord evaluate_point(
    const std::function<EvaluatedDesign(const DesignPoint&, std::size_t)>&
        evaluator,
    const DesignPoint& point, std::size_t global_index,
    const SweepOptions& options, Watchdog& watchdog, std::size_t slot) {
  CheckpointRecord record;
  record.index = global_index;
  const int max_attempts = std::max(1, options.max_attempts);
  int attempts = 0;
  for (;;) {
    ++attempts;
    util::CancelToken token;
    const util::ScopedCancel scope(&token);
    try {
      const WatchdogArm arm(watchdog, slot, &token);
      record.design = evaluator(point, global_index);
      record.category = FailureCategory::kNone;
      break;
    } catch (const util::CancelledError& e) {
      record.category = FailureCategory::kTimeout;
      record.design = failed_design(
          point, std::string("watchdog deadline expired (") + e.what() + ")");
    } catch (const check::CheckError& e) {
      // Pre-flight refusals are deterministic: quarantine immediately.
      record.category = FailureCategory::kCheck;
      record.design = failed_design(point, e.what());
      break;
    } catch (const std::exception& e) {
      record.category = FailureCategory::kNumeric;
      record.design = failed_design(point, e.what());
    }
    if (attempts >= max_attempts) break;
  }
  record.attempts = attempts;
  return record;
}

void validate_record_against_space(const CheckpointRecord& record,
                                   const std::vector<DesignPoint>& points,
                                   const ShardSpec* shard,
                                   const std::string& path) {
  const bool in_range = record.index < points.size();
  const bool in_shard =
      shard == nullptr ||
      static_cast<int>(record.index % static_cast<std::size_t>(
                                          shard->count)) == shard->index;
  bool point_matches = false;
  if (in_range) {
    const DesignPoint& p = points[record.index];
    const DesignPoint& q = record.design.point;
    point_matches = p.crossbar_size == q.crossbar_size &&
                    p.parallelism == q.parallelism &&
                    p.interconnect_node == q.interconnect_node;
  }
  if (!in_range || !in_shard || !point_matches)
    reject("MN-DSE-003",
           "checkpoint record for point " + std::to_string(record.index) +
               " does not match the enumerated design space",
           path,
           "the journal was produced by different inputs; restart without "
           "--resume");
}

// Failure bookkeeping shared by run_sweep and merge_checkpoints: counts
// per category, quarantines, retries, and the all-failed diagnostic.
void finalize(SweepResult& out) {
  out.result.feasible_count = 0;
  out.result.failed_count = 0;
  for (const CheckpointRecord& record : out.records) {
    out.result.designs.push_back(record.design);
    if (record.design.feasible) ++out.result.feasible_count;
    if (!record.design.evaluated) {
      ++out.result.failed_count;
      ++out.quarantined_count;
      switch (record.category) {
        case FailureCategory::kCheck:
          ++out.failed_check;
          break;
        case FailureCategory::kNumeric:
          ++out.failed_numeric;
          break;
        case FailureCategory::kTimeout:
          ++out.failed_timeout;
          break;
        case FailureCategory::kNone:
          break;
      }
    }
    if (record.attempts > 1) out.retried_count += record.attempts - 1;
  }
  if (!out.records.empty() &&
      out.result.failed_count ==
          static_cast<long>(out.records.size())) {
    check::Diagnostic d;
    d.code = "MN-DSE-006";
    d.severity = check::Severity::kError;
    d.message = "every design point of the sweep failed (" +
                std::to_string(out.failed_check) + " check, " +
                std::to_string(out.failed_numeric) + " numeric, " +
                std::to_string(out.failed_timeout) + " timeout)";
    d.hint = "first failure: " + out.records.front().design.failure;
    out.diagnostics.push_back(std::move(d));
  }
  if (out.torn_tail) {
    check::Diagnostic d;
    d.code = "MN-DSE-007";
    d.severity = check::Severity::kWarning;
    d.message =
        "checkpoint ended in a torn record (crash artifact); the "
        "affected point was re-evaluated";
    out.diagnostics.push_back(std::move(d));
  }
  obs::Registry& reg = obs::Registry::global();
  reg.add("dse.sweep.points", static_cast<long>(out.records.size()));
  reg.add("dse.sweep.resumed_points", out.resumed_count);
  reg.add("dse.sweep.evaluated_points", out.evaluated_count);
  reg.add("dse.sweep.quarantined_points", out.quarantined_count);
  reg.add("dse.sweep.timeout_points", out.failed_timeout);
  reg.add("dse.sweep.retries", out.retried_count);
  if (out.torn_tail) reg.add("dse.sweep.torn_tails", 1);
}

std::string reencode(const CheckpointHeader& header,
                     const std::vector<CheckpointRecord>& records) {
  std::string text = encode_checkpoint_header(header);
  for (const CheckpointRecord& r : records)
    text += encode_checkpoint_record(r);
  return text;
}

}  // namespace

void ShardSpec::validate() const {
  if (count < 1 || index < 0 || index >= count)
    reject("MN-DSE-004",
           "invalid shard spec " + std::to_string(index) + "/" +
               std::to_string(count),
           "", "--shard takes i/N with 0 <= i < N");
}

std::vector<std::size_t> shard_point_indices(std::size_t total,
                                             const ShardSpec& shard) {
  shard.validate();
  std::vector<std::size_t> indices;
  for (std::size_t i = static_cast<std::size_t>(shard.index); i < total;
       i += static_cast<std::size_t>(shard.count))
    indices.push_back(i);
  return indices;
}

SweepOptions SweepOptions::from_config(const arch::AcceleratorConfig& base) {
  SweepOptions options;
  options.shard.index = base.sweep_shard_index;
  options.shard.count = base.sweep_shard_count;
  options.checkpoint_path = base.sweep_checkpoint;
  options.resume = base.sweep_resume;
  options.point_deadline_ms = base.sweep_deadline_ms;
  options.max_attempts = base.sweep_max_attempts;
  return options;
}

bool SweepResult::ok() const {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const check::Diagnostic& d) {
                        return d.severity == check::Severity::kError;
                      });
}

SweepResult run_sweep(const nn::Network& network,
                      const arch::AcceleratorConfig& base,
                      const DesignSpace& space, const SweepOptions& options) {
  options.constraints.validate();
  options.shard.validate();
  if (options.resume && options.checkpoint_path.empty())
    reject("MN-DSE-004", "--resume requires a checkpoint journal", "",
           "pass --checkpoint <path> (or [sweep] Checkpoint)");

  // Same pre-flight as explore(): the network and base configuration are
  // shared by every point, so refuse-with-diagnosis before any solve.
  // Skipped under a test evaluator — it never reads the base config.
  if (base.check_preflight && !options.evaluator) {
    check::DiagnosticList diags = check::check_network(network);
    diags.merge(check::check_config_consistency(base));
    if (base.check_warnings_as_errors) diags.promote_warnings();
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
  }

  obs::Span sweep_span("dse.sweep");
  const std::vector<DesignPoint> points = [&] {
    obs::Span span("dse.enumerate");
    return space.enumerate();
  }();

  SweepResult out;
  out.header.version = 1;
  out.header.fingerprint =
      sweep_fingerprint(network, base, space, options.constraints);
  out.header.shard_index = options.shard.index;
  out.header.shard_count = options.shard.count;
  out.header.total_points = points.size();
  out.result.error_constraint = options.constraints.max_error;

  const std::vector<std::size_t> mine =
      shard_point_indices(points.size(), options.shard);

  // Resume: replay completed points from the journal.
  std::unordered_map<std::uint64_t, CheckpointRecord> completed;
  CheckpointJournal journal;
  const bool checkpointing = !options.checkpoint_path.empty();
  if (checkpointing) {
    bool fresh = true;
    if (options.resume && file_exists(options.checkpoint_path)) {
      obs::Span span("dse.sweep.replay");
      CheckpointFile ck = read_checkpoint(options.checkpoint_path);
      if (ck.header.fingerprint != out.header.fingerprint)
        reject("MN-DSE-002",
               "stale checkpoint: its fingerprint does not match the "
               "current network/configuration/space/constraints",
               options.checkpoint_path,
               "the inputs changed since the journal was written; restart "
               "without --resume");
      if (ck.header.shard_index != out.header.shard_index ||
          ck.header.shard_count != out.header.shard_count ||
          ck.header.total_points != out.header.total_points)
        reject("MN-DSE-004",
               "checkpoint belongs to shard " +
                   std::to_string(ck.header.shard_index) + "/" +
                   std::to_string(ck.header.shard_count) + " of " +
                   std::to_string(ck.header.total_points) +
                   " points, not the requested partition",
               options.checkpoint_path,
               "resume with the same --shard the journal was started with");
      for (CheckpointRecord& record : ck.records) {
        validate_record_against_space(record, points, &options.shard,
                                      options.checkpoint_path);
        completed[record.index] = std::move(record);  // later wins
      }
      out.torn_tail = ck.torn_tail;
      if (ck.torn_tail) {
        // Drop the torn bytes so future appends keep the journal
        // parseable. Records re-encode byte-identically (canonical
        // encoding), and the rewrite itself is atomic.
        std::vector<CheckpointRecord> kept;
        kept.reserve(completed.size());
        for (const std::size_t gi : mine) {
          const auto it = completed.find(gi);
          if (it != completed.end()) kept.push_back(it->second);
        }
        util::atomic_write_file(options.checkpoint_path,
                                reencode(ck.header, kept));
      }
      journal.open(options.checkpoint_path, /*truncate=*/false);
      fresh = false;
    }
    if (fresh) {
      journal.open(options.checkpoint_path, /*truncate=*/true);
      journal.append(encode_checkpoint_header(out.header));
    }
  }
  out.resumed_count = static_cast<long>(completed.size());

  std::vector<std::size_t> remaining;
  remaining.reserve(mine.size());
  for (const std::size_t gi : mine)
    if (completed.find(gi) == completed.end()) remaining.push_back(gi);
  out.evaluated_count = static_cast<long>(remaining.size());

  const auto evaluator =
      options.evaluator
          ? options.evaluator
          : std::function<EvaluatedDesign(const DesignPoint&, std::size_t)>(
                [&](const DesignPoint& point, std::size_t) {
                  return evaluate_design(network, base, point,
                                         options.constraints);
                });

  util::ThreadPool pool(base.parallel_threads);
  Watchdog watchdog(options.point_deadline_ms, pool.worker_count());
  std::vector<CheckpointRecord> evaluated = util::parallel_map(
      pool, remaining.size(), [&](std::size_t i, std::size_t worker) {
        obs::Span point_span("dse.design_point");
        CheckpointRecord record =
            evaluate_point(evaluator, points[remaining[i]], remaining[i],
                           options, watchdog, worker);
        if (checkpointing) {
          // mnsim-analyze: allow(parallel-capture, CheckpointJournal serializes internally under its own mutex)
          journal.append(encode_checkpoint_record(record));
        }
        return record;
      });

  // Assemble in ascending global-index order: resumed records and fresh
  // evaluations interleave exactly as an uninterrupted run would have
  // produced them.
  std::unordered_map<std::uint64_t, const CheckpointRecord*> fresh_by_index;
  for (const CheckpointRecord& record : evaluated)
    fresh_by_index[record.index] = &record;
  out.records.reserve(mine.size());
  for (const std::size_t gi : mine) {
    const auto done = completed.find(gi);
    if (done != completed.end()) {
      out.records.push_back(done->second);
    } else {
      out.records.push_back(*fresh_by_index.at(gi));
    }
  }
  finalize(out);
  return out;
}

SweepResult merge_checkpoints(const std::vector<std::string>& paths,
                              const nn::Network& network,
                              const arch::AcceleratorConfig& base,
                              const DesignSpace& space,
                              const Constraints& constraints) {
  constraints.validate();
  if (paths.empty())
    reject("MN-DSE-005", "merge needs at least one checkpoint", "",
           "pass the shard journals to --merge");
  obs::Span span("dse.sweep.merge");
  const std::vector<DesignPoint> points = space.enumerate();
  const std::uint64_t fingerprint =
      sweep_fingerprint(network, base, space, constraints);

  SweepResult out;
  out.header.version = 1;
  out.header.fingerprint = fingerprint;
  out.header.shard_index = 0;
  out.header.shard_count = 1;
  out.header.total_points = points.size();
  out.result.error_constraint = constraints.max_error;

  std::unordered_map<std::uint64_t, CheckpointRecord> merged;
  for (const std::string& path : paths) {
    CheckpointFile ck = read_checkpoint(path);
    if (ck.header.fingerprint != fingerprint ||
        ck.header.total_points != points.size())
      reject("MN-DSE-002",
             "stale checkpoint: its fingerprint does not match the "
             "current network/configuration/space/constraints",
             path, "re-run the shard against the current inputs");
    out.torn_tail = out.torn_tail || ck.torn_tail;
    for (CheckpointRecord& record : ck.records) {
      validate_record_against_space(record, points, nullptr, path);
      const auto existing = merged.find(record.index);
      if (existing == merged.end()) {
        merged[record.index] = std::move(record);
      } else if (encode_checkpoint_record(existing->second) !=
                 encode_checkpoint_record(record)) {
        reject("MN-DSE-005",
               "checkpoints disagree on point " +
                   std::to_string(record.index),
               path,
               "the shards were produced by different runs; re-run them "
               "from one configuration");
      }
    }
  }

  if (merged.size() != points.size()) {
    std::uint64_t first_missing = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (merged.find(i) == merged.end()) {
        first_missing = i;
        break;
      }
    }
    reject("MN-DSE-005",
           "merge covers " + std::to_string(merged.size()) + " of " +
               std::to_string(points.size()) +
               " design points (first missing: " +
               std::to_string(first_missing) + ")",
           "",
           "a shard journal is missing or its sweep has not finished; "
           "resume it to completion first");
  }

  out.records.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    out.records.push_back(std::move(merged.at(i)));
  out.resumed_count = static_cast<long>(out.records.size());
  finalize(out);
  return out;
}

// ---- JSON report ------------------------------------------------------------

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string sweep_report_json(const SweepResult& sweep,
                              const nn::Network& network) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"network\": {\"name\": " << quote(network.name)
     << ", \"depth\": " << network.depth()
     << ", \"weights\": " << network.total_weights() << "},\n";
  os << "  \"sweep\": {"
     << "\"shard_index\": " << sweep.header.shard_index
     << ", \"shard_count\": " << sweep.header.shard_count
     << ", \"total_points\": " << sweep.header.total_points
     << ", \"shard_points\": " << sweep.records.size()
     << ", \"error_constraint\": " << num(sweep.result.error_constraint)
     << ", \"feasible\": " << sweep.result.feasible_count
     << ", \"resumed\": " << sweep.resumed_count
     << ", \"evaluated\": " << sweep.evaluated_count
     << ", \"quarantined\": " << sweep.quarantined_count
     << ", \"retries\": " << sweep.retried_count
     << ", \"torn_tail\": " << (sweep.torn_tail ? 1 : 0)
     << ", \"failed\": {\"total\": " << sweep.result.failed_count
     << ", \"check\": " << sweep.failed_check
     << ", \"numeric\": " << sweep.failed_numeric
     << ", \"timeout\": " << sweep.failed_timeout << "}},\n";

  os << "  \"designs\": [";
  for (std::size_t i = 0; i < sweep.records.size(); ++i) {
    const CheckpointRecord& r = sweep.records[i];
    const EvaluatedDesign& d = r.design;
    os << (i == 0 ? "\n" : ",\n") << "    {\"index\": " << r.index
       << ", \"crossbar_size\": " << d.point.crossbar_size
       << ", \"parallelism\": " << d.point.parallelism
       << ", \"interconnect_node\": " << d.point.interconnect_node
       << ", \"evaluated\": " << (d.evaluated ? 1 : 0)
       << ", \"feasible\": " << (d.feasible ? 1 : 0)
       << ", \"category\": " << quote(failure_category_name(r.category))
       << ", \"attempts\": " << r.attempts
       << ", \"area\": " << num(d.metrics.area)
       << ", \"energy_per_sample\": " << num(d.metrics.energy_per_sample)
       << ", \"latency\": " << num(d.metrics.latency)
       << ", \"sample_latency\": " << num(d.metrics.sample_latency)
       << ", \"power\": " << num(d.metrics.power)
       << ", \"max_error_rate\": " << num(d.metrics.max_error_rate)
       << ", \"avg_error_rate\": " << num(d.metrics.avg_error_rate)
       << ", \"solver_fallbacks\": " << d.metrics.solver_fallbacks
       << ", \"faults_injected\": " << d.metrics.faults_injected
       << ", \"failure\": " << quote(d.failure) << "}";
  }
  os << (sweep.records.empty() ? "" : "\n  ") << "],\n";

  const std::vector<EvaluatedDesign> pareto = sweep.result.pareto_front();
  os << "  \"pareto\": [";
  for (std::size_t i = 0; i < pareto.size(); ++i) {
    const EvaluatedDesign& d = pareto[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"crossbar_size\": " << d.point.crossbar_size
       << ", \"parallelism\": " << d.point.parallelism
       << ", \"interconnect_node\": " << d.point.interconnect_node
       << ", \"area\": " << num(d.metrics.area)
       << ", \"energy_per_sample\": " << num(d.metrics.energy_per_sample)
       << ", \"latency\": " << num(d.metrics.latency)
       << ", \"max_error_rate\": " << num(d.metrics.max_error_rate) << "}";
  }
  os << (pareto.empty() ? "" : "\n  ") << "],\n";

  os << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < sweep.diagnostics.size(); ++i) {
    const check::Diagnostic& diag = sweep.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"code\": " << quote(diag.code)
       << ", \"severity\": " << quote(check::severity_name(diag.severity))
       << ", \"message\": " << quote(diag.message)
       << ", \"hint\": " << quote(diag.hint) << "}";
  }
  os << (sweep.diagnostics.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace mnsim::dse
