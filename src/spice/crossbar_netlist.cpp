#include "spice/crossbar_netlist.hpp"

#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "util/fp.hpp"

namespace mnsim::spice {

CrossbarSpec CrossbarSpec::uniform(int rows, int cols,
                                   const tech::MemristorModel& device,
                                   double segment_resistance,
                                   double sense_resistance, double r_state) {
  CrossbarSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.device = device;
  spec.segment_resistance = segment_resistance;
  spec.sense_resistance = sense_resistance;
  spec.input_voltages.assign(static_cast<std::size_t>(rows),
                             device.v_read.value());
  spec.cell_resistance.assign(
      static_cast<std::size_t>(rows),
      std::vector<double>(static_cast<std::size_t>(cols), r_state));
  return spec;
}

void CrossbarSpec::validate() const {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("CrossbarSpec: rows/cols");
  if (!(sense_resistance > 0))
    throw std::invalid_argument("CrossbarSpec: sense resistance");
  if (!ideal_wires && !(segment_resistance > 0))
    throw std::invalid_argument("CrossbarSpec: segment resistance");
  if (input_voltages.size() != static_cast<std::size_t>(rows))
    throw std::invalid_argument("CrossbarSpec: input vector size");
  if (cell_resistance.size() != static_cast<std::size_t>(rows))
    throw std::invalid_argument("CrossbarSpec: cell matrix rows");
  for (const auto& row : cell_resistance) {
    if (row.size() != static_cast<std::size_t>(cols))
      throw std::invalid_argument("CrossbarSpec: cell matrix cols");
    for (double r : row)
      if (!(r > 0))
        throw std::invalid_argument("CrossbarSpec: cell resistance <= 0");
  }
  device.validate();
}

Netlist build_crossbar_netlist(const CrossbarSpec& spec,
                               std::vector<NodeId>* out_column_nodes) {
  obs::Span span("spice.build_netlist");
  spec.validate();
  Netlist nl(spec.device);
  nl.set_linear_memristors(spec.linear_memristors);

  const int m = spec.rows;
  const int n = spec.cols;

  // One driven node per row; row taps at each cell; column taps at each
  // cell; a sense node per column (shared with the last column tap).
  std::vector<NodeId> source_node(static_cast<std::size_t>(m));
  std::vector<std::vector<NodeId>> row_tap(
      static_cast<std::size_t>(m),
      std::vector<NodeId>(static_cast<std::size_t>(n)));
  std::vector<std::vector<NodeId>> col_tap(
      static_cast<std::size_t>(m),
      std::vector<NodeId>(static_cast<std::size_t>(n)));

  for (int i = 0; i < m; ++i) source_node[i] = nl.add_node();
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      row_tap[i][j] = spec.ideal_wires ? source_node[i] : nl.add_node();
      col_tap[i][j] = nl.add_node();
    }

  for (int i = 0; i < m; ++i)
    nl.add_source(source_node[i], spec.input_voltages[i],
                  "Vin" + std::to_string(i));

  // Row wires: source -> tap(0) -> tap(1) -> ...
  if (!spec.ideal_wires) {
    for (int i = 0; i < m; ++i) {
      NodeId prev = source_node[i];
      for (int j = 0; j < n; ++j) {
        nl.add_resistor(prev, row_tap[i][j], spec.segment_resistance,
                        "Rrow" + std::to_string(i) + "_" + std::to_string(j));
        prev = row_tap[i][j];
      }
    }
  }

  // Cells.
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      std::string cell_name = "X";
      cell_name += std::to_string(i);
      cell_name += '_';
      cell_name += std::to_string(j);
      nl.add_memristor(row_tap[i][j], col_tap[i][j],
                       spec.cell_resistance[i][j], std::move(cell_name));
    }

  // Column wires run down to the sense resistor below the last row; when
  // wires are ideal the column taps are merged by zero-resistance
  // modelling: we emulate that by chaining negligible-cost merges — here
  // we simply connect every tap straight to the sense node.
  std::vector<NodeId> sense_node(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) sense_node[j] = nl.add_node();

  if (spec.ideal_wires) {
    // Ideal column: all taps shorted to the sense node. MNA needs finite
    // resistances, so use a value far below any cell resistance.
    const double tiny = 1e-6;
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < n; ++j)
        nl.add_resistor(col_tap[i][j], sense_node[j], tiny);
  } else {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i + 1 < m; ++i)
        nl.add_resistor(col_tap[i][j], col_tap[i + 1][j],
                        spec.segment_resistance,
                        "Rcol" + std::to_string(i) + "_" + std::to_string(j));
      nl.add_resistor(col_tap[m - 1][j], sense_node[j],
                      spec.segment_resistance,
                      "Rcol_end" + std::to_string(j));
    }
  }

  for (int j = 0; j < n; ++j)
    nl.add_resistor(sense_node[j], kGround, spec.sense_resistance,
                    "Rs" + std::to_string(j));

  if (spec.segment_capacitance > 0 && !spec.ideal_wires) {
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < n; ++j) {
        nl.add_capacitor(row_tap[i][j], kGround, spec.segment_capacitance);
        nl.add_capacitor(col_tap[i][j], kGround, spec.segment_capacitance);
      }
    for (int j = 0; j < n; ++j)
      nl.add_capacitor(sense_node[j], kGround, spec.segment_capacitance);
  }

  // Publish the wire chains so the linear solver can run its bipartite
  // Schur rung: row wires on the eliminated side, column wires (with
  // their sense node) on the kept side. With ideal wires the row taps
  // are pinned source nodes and every column tap shorts to the sense
  // node — no chain structure to exploit, so none is attached.
  if (!spec.ideal_wires) {
    WireStructure ws;
    ws.row_chains.resize(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      ws.row_chains[static_cast<std::size_t>(i)]
          .assign(row_tap[static_cast<std::size_t>(i)].begin(),
                  row_tap[static_cast<std::size_t>(i)].end());
    }
    ws.col_chains.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      auto& chain = ws.col_chains[static_cast<std::size_t>(j)];
      chain.reserve(static_cast<std::size_t>(m) + 1);
      for (int i = 0; i < m; ++i)
        chain.push_back(col_tap[static_cast<std::size_t>(i)]
                               [static_cast<std::size_t>(j)]);
      chain.push_back(sense_node[static_cast<std::size_t>(j)]);
    }
    nl.set_wire_structure(std::move(ws));
  }

  if (out_column_nodes) *out_column_nodes = sense_node;
  return nl;
}

bool CrossbarSolveCache::matches(const CrossbarSpec& spec) const {
  if (!valid) return false;
  const auto& k = key;
  // Everything except cell_resistance / input_voltages values is
  // topology (or enters the device law), so any difference forces a
  // rebuild. The shapes of the value arrays are implied by rows/cols.
  return k.rows == spec.rows && k.cols == spec.cols &&
         util::exactly_equal(k.segment_resistance, spec.segment_resistance) &&
         util::exactly_equal(k.sense_resistance, spec.sense_resistance) &&
         k.linear_memristors == spec.linear_memristors &&
         k.ideal_wires == spec.ideal_wires &&
         k.segment_capacitance == spec.segment_capacitance &&
         k.device.kind == spec.device.kind &&
         k.device.r_min == spec.device.r_min &&
         k.device.r_max == spec.device.r_max &&
         k.device.v_read == spec.device.v_read &&
         k.device.nonlinearity_vt == spec.device.nonlinearity_vt;
}

namespace {

CrossbarSolution solve_built(const Netlist& nl,
                             const std::vector<NodeId>& column_nodes,
                             const DcOptions& options, MnaCache* mna) {
  CrossbarSolution sol;
  sol.column_output_nodes = column_nodes;
  sol.dc = solve_dc(nl, options, mna);
  sol.column_output_voltage.reserve(sol.column_output_nodes.size());
  for (NodeId node : sol.column_output_nodes)
    sol.column_output_voltage.push_back(sol.dc.voltage(node));
  sol.total_power = total_source_power(nl, sol.dc);
  return sol;
}

}  // namespace

CrossbarSolution solve_crossbar(const CrossbarSpec& spec,
                                const DcOptions& options,
                                CrossbarSolveCache* cache) {
  if (!cache) {
    std::vector<NodeId> column_nodes;
    Netlist nl = build_crossbar_netlist(spec, &column_nodes);
    return solve_built(nl, column_nodes, options, nullptr);
  }

  if (!cache->matches(spec)) {
    cache->netlist = build_crossbar_netlist(spec, &cache->column_nodes);
    cache->key = spec;
    cache->mna = MnaCache{};  // topology changed: drop pattern + warm start
    cache->valid = true;
  } else {
    // Value-only reprogramming. build_crossbar_netlist adds memristors
    // row-major (index i*cols + j) and sources in row order.
    spec.validate();
    const auto cols = static_cast<std::size_t>(spec.cols);
    for (std::size_t i = 0; i < static_cast<std::size_t>(spec.rows); ++i) {
      cache->netlist.set_source_voltage(i, spec.input_voltages[i]);
      for (std::size_t j = 0; j < cols; ++j)
        cache->netlist.set_memristor_state(i * cols + j,
                                           spec.cell_resistance[i][j]);
    }
  }
  return solve_built(cache->netlist, cache->column_nodes, options,
                     &cache->mna);
}

std::vector<CrossbarBatchResult> solve_crossbar_batch(
    const CrossbarSpec& base, const std::vector<CrossbarBatchEntry>& entries,
    const DcOptions& options, int threads,
    const std::vector<double>& warm_start_voltages) {
  std::vector<CrossbarBatchResult> results(entries.size());
  if (entries.empty()) return results;

  std::vector<NodeId> column_nodes;
  const Netlist nl = build_crossbar_netlist(base, &column_nodes);

  // Translate to element-order overrides: sources are added in row
  // order, memristors row-major (i * cols + j).
  const auto rows = static_cast<std::size_t>(base.rows);
  const auto cols = static_cast<std::size_t>(base.cols);
  std::vector<DcBatchEntry> dc_entries(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const auto& e = entries[k];
    if (!e.input_voltages.empty()) {
      if (e.input_voltages.size() != rows)
        throw std::invalid_argument(
            "solve_crossbar_batch: input_voltages size mismatch");
      dc_entries[k].source_voltages = e.input_voltages;
    }
    if (!e.cell_resistance.empty()) {
      if (e.cell_resistance.size() != rows)
        throw std::invalid_argument(
            "solve_crossbar_batch: cell_resistance rows mismatch");
      auto& states = dc_entries[k].memristor_states;
      states.reserve(rows * cols);
      for (const auto& row : e.cell_resistance) {
        if (row.size() != cols)
          throw std::invalid_argument(
              "solve_crossbar_batch: cell_resistance cols mismatch");
        states.insert(states.end(), row.begin(), row.end());
      }
    }
  }

  DcBatchOptions batch_opt;
  batch_opt.dc = options;
  batch_opt.threads = threads;
  batch_opt.warm_start_voltages = warm_start_voltages;
  solve_dc_batch_visit(
      nl, dc_entries, batch_opt,
      [&](std::size_t index, const Netlist& programmed, const DcResult& dc) {
        CrossbarBatchResult& out = results[index];
        out.column_output_voltage.reserve(column_nodes.size());
        for (NodeId node : column_nodes)
          out.column_output_voltage.push_back(dc.voltage(node));
        out.total_power = total_source_power(programmed, dc);
        out.converged = dc.converged;
        out.diagnostics = dc.diagnostics;
      });
  return results;
}

std::vector<double> ideal_column_outputs(const CrossbarSpec& spec) {
  spec.validate();
  // Wire-free linear network: column j is a star of conductances g_ij
  // from each input to the sense node, loaded by g_s (paper Eq. 1-2):
  //   v_out_j = sum_i g_ij v_i / (g_s + sum_i g_ij).
  std::vector<double> out(static_cast<std::size_t>(spec.cols), 0.0);
  const double gs = 1.0 / spec.sense_resistance;
  for (int j = 0; j < spec.cols; ++j) {
    double num = 0.0;
    double den = gs;
    for (int i = 0; i < spec.rows; ++i) {
      const double g = 1.0 / spec.cell_resistance[i][j];
      num += g * spec.input_voltages[i];
      den += g;
    }
    out[j] = num / den;
  }
  return out;
}

}  // namespace mnsim::spice
