#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/sparse.hpp"
#include "spice/mna_internal.hpp"

namespace mnsim::spice {

double TransientResult::settling_time(std::size_t probe,
                                      double tolerance) const {
  if (probe >= probe_voltages.size())
    throw std::out_of_range("TransientResult::settling_time: probe");
  const auto& v = probe_voltages[probe];
  if (v.empty()) return 0.0;
  const double final_v = v.back();
  const double band = tolerance * std::fabs(final_v) + 1e-15;
  // Walk backwards: the settling time is the first instant after the last
  // excursion outside the band.
  for (std::size_t i = v.size(); i-- > 0;) {
    if (std::fabs(v[i] - final_v) > band)
      return i + 1 < time.size() ? time[i + 1] : time.back();
  }
  return time.front();
}

TransientResult solve_transient(const Netlist& nl,
                                const std::vector<NodeId>& probes,
                                const TransientOptions& opt) {
  nl.validate();
  if (!(opt.time_step > 0) || !(opt.end_time > 0))
    throw std::invalid_argument("solve_transient: time step / end time");
  const internal::Indexer ix = internal::build_indexer(nl);
  const int nodes = nl.node_count() + 1;
  for (NodeId p : probes) {
    if (p < 0 || p >= nodes)
      throw std::invalid_argument("solve_transient: probe node");
  }

  const auto& dev = nl.device();
  const double dt = opt.time_step;
  const long steps = static_cast<long>(std::ceil(opt.end_time / dt));

  // v holds the full node-voltage vector of the previous accepted step;
  // initial condition: everything at zero, sources step at t = 0+.
  std::vector<double> v(static_cast<std::size_t>(nodes), 0.0);

  TransientResult result;
  result.converged = true;
  result.time.reserve(static_cast<std::size_t>(steps) + 1);
  result.probe_voltages.assign(probes.size(), {});
  auto record = [&](double t) {
    result.time.push_back(t);
    for (std::size_t i = 0; i < probes.size(); ++i)
      result.probe_voltages[i].push_back(v[probes[i]]);
  };
  record(0.0);

  // After t = 0 the pinned nodes hold their DC values.
  std::vector<double> v_next = v;
  for (int n = 0; n < nodes; ++n) {
    if (ix.unknown_of_node[n] < 0) v_next[n] = ix.pinned_voltage[n];
  }

  for (long step = 1; step <= steps; ++step) {
    // Newton iterations for this time point, starting from the previous
    // point's solution.
    bool step_converged = nl.memristors().empty() || nl.linear_memristors();
    const int newton_max =
        step_converged ? 1 : opt.max_newton_iterations;
    for (int it = 0; it < newton_max; ++it) {
      numeric::SparseBuilder builder(
          static_cast<std::size_t>(ix.unknown_count));
      std::vector<double> rhs(static_cast<std::size_t>(ix.unknown_count),
                              0.0);

      for (const auto& r : nl.resistors())
        internal::stamp(ix, builder, rhs, r.a, r.b, 1.0 / r.ohms, 0.0);

      for (const auto& m : nl.memristors()) {
        if (nl.linear_memristors()) {
          internal::stamp(ix, builder, rhs, m.a, m.b, 1.0 / m.r_state, 0.0);
          continue;
        }
        const double v0 = v_next[m.a] - v_next[m.b];
        const double vt = dev.nonlinearity_vt.value();
        // Saturate the companion model at the same bound as the DC
        // stamp (tech::kMaxSinhArg): a Newton iterate that overshoots
        // must yield a huge-but-finite conductance, not overflow sinh
        // into inf and poison the whole matrix. Clamping in volts keeps
        // the in-range path bit-identical to the unclamped formula.
        const double vc = std::clamp(v0, -tech::kMaxSinhArg * vt,
                                     tech::kMaxSinhArg * vt);
        const double i0 = (vt / m.r_state) * std::sinh(vc / vt);
        const double gd = std::cosh(vc / vt) / m.r_state;
        internal::stamp(ix, builder, rhs, m.a, m.b, gd, i0 - gd * vc);
      }

      // Backward-Euler capacitor companion: G = C/dt with a history
      // current source -(C/dt) * v_prev flowing a -> b.
      for (const auto& c : nl.capacitors()) {
        const double g = c.farads / dt;
        const double v_prev = v[c.a] - v[c.b];
        internal::stamp(ix, builder, rhs, c.a, c.b, g, -g * v_prev);
      }

      numeric::CsrMatrix a(builder);
      auto cg = numeric::conjugate_gradient(a, rhs, opt.cg_tolerance);
      if (!cg.converged)
        throw std::runtime_error("solve_transient: conjugate gradient stalled");

      double max_delta = 0.0;
      for (int n = 1; n < nodes; ++n) {
        const int u = ix.unknown_of_node[n];
        if (u < 0) continue;
        max_delta = std::max(max_delta, std::fabs(cg.x[u] - v_next[n]));
        v_next[n] = cg.x[u];
      }
      if (max_delta < opt.newton_tolerance) {
        step_converged = true;
        break;
      }
    }
    if (!step_converged) result.converged = false;
    v = v_next;
    record(static_cast<double>(step) * dt);
  }
  return result;
}

}  // namespace mnsim::spice
