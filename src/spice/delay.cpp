#include "spice/delay.hpp"

#include <cmath>
#include <stdexcept>

namespace mnsim::spice {

double crossbar_elmore_tau(const CrossbarSpec& spec,
                           double segment_capacitance) {
  spec.validate();
  // Harmonic-mean column resistance as the source impedance seen by the
  // line, in series with the ladder of (rows + cols) RC segments plus the
  // sense resistor. Elmore: tau = sum_k R_upstream(k) * C_k.
  const double r_cell_avg = spec.device.harmonic_mean_resistance().value();
  const double r_par =
      (r_cell_avg + (spec.rows + spec.cols) * spec.segment_resistance) /
      spec.rows;
  const int segments = spec.rows + spec.cols;
  double tau = 0.0;
  double upstream = r_par + spec.sense_resistance;
  for (int k = 0; k < segments; ++k) {
    upstream += spec.segment_resistance;
    tau += upstream * segment_capacitance;
  }
  return tau;
}

double crossbar_settling_latency(const CrossbarSpec& spec,
                                 double segment_capacitance,
                                 int output_bits) {
  // Same resolution range the noise model accepts; without the check,
  // pow(2, bits + 1) silently overflows to inf for absurd inputs and
  // the latency model returns inf instead of failing.
  if (output_bits < 1 || output_bits > 16)
    throw std::invalid_argument(
        "crossbar_settling_latency: output_bits outside [1, 16]");
  const double tau = crossbar_elmore_tau(spec, segment_capacitance);
  const double settle = std::log(std::pow(2.0, output_bits + 1)) * tau;
  return spec.device.read_latency.value() + settle;
}

}  // namespace mnsim::spice
