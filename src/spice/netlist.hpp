// Circuit netlist data model for the circuit-level ("SPICE") baseline.
//
// MNSIM's validation (paper Sec. VII-A/B, Fig. 5, Tables II/III) compares
// the behavior-level models against a circuit-level simulation of the
// crossbar resistor network. This substrate represents exactly that
// circuit class: linear resistors, nonlinear memristor elements
// (I = A*sinh(V/v_t), the same device law tech::MemristorModel uses),
// ideal grounded voltage sources, and (for RC ablations and export)
// grounded capacitors — solved for the DC operating point by
// Newton-iterated modified nodal analysis in mna.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "tech/memristor.hpp"

namespace mnsim::spice {

// Node 0 is ground; add_node() allocates 1, 2, ...
using NodeId = int;
inline constexpr NodeId kGround = 0;

struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 0.0;
  std::string name;
};

struct MemristorElement {
  NodeId a = kGround;      // current flows a -> b for positive v(a)-v(b)
  NodeId b = kGround;
  double r_state = 1e3;    // programmed (linear-limit) resistance
  std::string name;
};

struct VoltageSource {
  NodeId node = kGround;   // ideal source from `node` to ground
  double volts = 0.0;
  std::string name;
};

struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 0.0;
  std::string name;
};

// Optional crossbar wire metadata a netlist builder can attach: the
// node-id chains (in wire order) of each row wire and each column wire
// (column chains include the sense node). Adjacent chain entries are
// coupled by wire-segment resistors, the two sides only by one
// memristor per tap pair — exactly the bipartite structure the Schur
// rung of the linear-solve ladder exploits (numeric/schur.hpp). The
// solver verifies the claim against the assembled matrix and falls back
// to the generic ladder when it does not hold, so stale or wrong
// structure degrades performance, never correctness.
struct WireStructure {
  std::vector<std::vector<NodeId>> row_chains;  // row taps, wire order
  std::vector<std::vector<NodeId>> col_chains;  // column taps + sense node

  [[nodiscard]] bool empty() const {
    return row_chains.empty() || col_chains.empty();
  }
};

class Netlist {
 public:
  // The shared nonlinear device law for all memristor elements.
  explicit Netlist(tech::MemristorModel device = tech::default_rram())
      : device_(std::move(device)) {}

  NodeId add_node();
  [[nodiscard]] int node_count() const { return next_node_ - 1; }

  void add_resistor(NodeId a, NodeId b, double ohms, std::string name = {});
  void add_memristor(NodeId a, NodeId b, double r_state,
                     std::string name = {});
  void add_source(NodeId node, double volts, std::string name = {});
  void add_capacitor(NodeId a, NodeId b, double farads,
                     std::string name = {});

  // Value-only mutation for sweep reuse: updates element `index` (in
  // insertion order) without touching the topology, so a netlist built
  // once can be re-programmed per Monte-Carlo trial instead of being
  // reconstructed (node allocation + element names dominate build cost).
  void set_memristor_state(std::size_t index, double r_state);
  void set_source_voltage(std::size_t index, double volts);

  // Wire-structure metadata for structure-exploiting solves; empty by
  // default (generic netlists). Value-only mutation never invalidates
  // it — it describes topology, not element values.
  void set_wire_structure(WireStructure ws) {
    wire_structure_ = std::move(ws);
  }
  [[nodiscard]] const WireStructure& wire_structure() const {
    return wire_structure_;
  }

  // Treat memristors as linear resistors at their programmed state
  // (disables the Newton loop; used for the nonlinearity ablation).
  void set_linear_memristors(bool linear) { linear_memristors_ = linear; }
  [[nodiscard]] bool linear_memristors() const { return linear_memristors_; }

  [[nodiscard]] const tech::MemristorModel& device() const { return device_; }
  [[nodiscard]] const std::vector<Resistor>& resistors() const {
    return resistors_;
  }
  [[nodiscard]] const std::vector<MemristorElement>& memristors() const {
    return memristors_;
  }
  [[nodiscard]] const std::vector<VoltageSource>& sources() const {
    return sources_;
  }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const {
    return capacitors_;
  }

  // Throws std::invalid_argument on dangling node ids or non-positive
  // element values.
  void validate() const;

 private:
  // The adders reject malformed elements eagerly, which makes the
  // defense-in-depth invariant diagnostics (MN-NET-006..009 in
  // check/netlist_check.cpp) unreachable through this API. The test peer
  // injects raw elements so those paths keep golden coverage.
  friend class NetlistTestPeer;

  void check_node(NodeId n) const;

  tech::MemristorModel device_;
  NodeId next_node_ = 1;
  bool linear_memristors_ = false;
  WireStructure wire_structure_;
  std::vector<Resistor> resistors_;
  std::vector<MemristorElement> memristors_;
  std::vector<VoltageSource> sources_;
  std::vector<Capacitor> capacitors_;
};

}  // namespace mnsim::spice
