// SPICE deck import — the inverse of export.hpp for the dialect MNSIM
// emits (R/C/V cards plus the behavioral sinh memristor B-sources).
// Enables round-trip testing and re-loading archived decks for solving.
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace mnsim::spice {

// Parses a deck produced by export_spice (or hand-written in the same
// subset: comment lines starting with '*', one element card per line,
// node names "0" or "n<k>", ".op"/".end" directives). The memristor
// nonlinearity scale is recovered from the B-source expressions; when the
// deck holds no memristors the supplied `device` is kept as-is. Throws
// std::runtime_error on cards outside the subset.
Netlist import_spice(const std::string& deck,
                     tech::MemristorModel device = tech::default_rram());

}  // namespace mnsim::spice
