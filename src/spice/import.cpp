#include "spice/import.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "check/diagnostic.hpp"
#include "util/config.hpp"
#include "util/fp.hpp"

namespace mnsim::spice {

namespace {

struct Card {
  char kind;  // R / C / V / B
  std::string name;
  std::string a;
  std::string b;
  std::string rest;
};

// All importer failures carry a stable code plus the deck line, so
// `mnsim check deck.sp` and a failed re-load render identically
// (docs/DIAGNOSTICS.md, MN-SPI family). ParseError stays a
// std::runtime_error, preserving the historical catch sites.
[[noreturn]] void fail(const char* code, int line_no, std::string message,
                       std::string hint = {}) {
  check::Diagnostic d;
  d.code = code;
  d.severity = check::Severity::kError;
  d.message = std::move(message);
  d.file = "spice import";
  d.line = line_no;
  d.hint = std::move(hint);
  throw check::ParseError(std::move(d));
}

int parse_node(const std::string& token, int line_no) {
  if (token == "0") return kGround;
  if (token.size() > 1 && token[0] == 'n') {
    char* end = nullptr;
    const long id = std::strtol(token.c_str() + 1, &end, 10);
    if (*end == '\0' && id > 0) return static_cast<int>(id);
  }
  fail("MN-SPI-001", line_no, "bad node '" + token + "'",
       "nodes are '0' (ground) or 'n<k>' with k >= 1");
}

double parse_value(const std::string& token, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str())
    fail("MN-SPI-002", line_no, "bad value '" + token + "'");
  return v;
}

}  // namespace

Netlist import_spice(const std::string& deck, tech::MemristorModel device) {
  std::istringstream in(deck);
  std::string line;
  int line_no = 0;

  struct PendingMemristor {
    int a;
    int b;
    double coef;
    double vt;
    std::string name;
    int line;
  };
  struct PendingResistor {
    int a;
    int b;
    double ohms;
    std::string name;
  };
  struct PendingCapacitor {
    int a;
    int b;
    double farads;
    std::string name;
  };
  struct PendingSource {
    int node;
    double volts;
    std::string name;
  };
  std::vector<PendingResistor> resistors;
  std::vector<PendingCapacitor> capacitors;
  std::vector<PendingSource> sources;
  std::vector<PendingMemristor> memristors;
  WireStructure structure;
  int max_node = 0;
  double vt = 0.0;

  while (std::getline(in, line)) {
    ++line_no;
    line = util::trim(line);
    if (line.rfind("*.mnsim ", 0) == 0) {
      // MNSIM extension directive inside a SPICE comment: wire-structure
      // chains emitted by export_spice. Unknown tags are ignored so
      // newer decks still load.
      std::istringstream ds(line.substr(8));
      std::string tag;
      ds >> tag;
      if (tag == "rowchain" || tag == "colchain") {
        std::vector<NodeId> chain;
        std::string token;
        while (ds >> token) {
          const int node = parse_node(token, line_no);
          max_node = std::max(max_node, node);
          chain.push_back(node);
        }
        if (!chain.empty()) {
          if (tag == "rowchain")
            structure.row_chains.push_back(std::move(chain));
          else
            structure.col_chains.push_back(std::move(chain));
        }
      }
      continue;
    }
    if (line.empty() || line[0] == '*') continue;
    if (line[0] == '.') continue;  // .op / .end

    std::istringstream ls(line);
    std::string head;
    std::string na;
    std::string nb;
    ls >> head >> na >> nb;
    if (head.empty() || na.empty() || nb.empty())
      fail("MN-SPI-003", line_no, "short card '" + line + "'",
           "element cards need at least <name> <node> <node>");
    const char kind = head[0];
    const std::string name = head.substr(1);

    if (kind == 'R' || kind == 'C') {
      std::string value;
      ls >> value;
      const int a = parse_node(na, line_no);
      const int b = parse_node(nb, line_no);
      max_node = std::max({max_node, a, b});
      if (kind == 'R')
        resistors.push_back({a, b, parse_value(value, line_no), name});
      else
        capacitors.push_back({a, b, parse_value(value, line_no), name});
    } else if (kind == 'V') {
      std::string dc;
      std::string value;
      ls >> dc >> value;
      if (dc != "DC")
        fail("MN-SPI-004", line_no, "only DC sources supported, got '" + dc +
                                        "'");
      if (nb != "0")
        fail("MN-SPI-005", line_no,
             "sources must be grounded (negative terminal '0'), got '" + nb +
                 "'");
      const int node = parse_node(na, line_no);
      max_node = std::max(max_node, node);
      sources.push_back({node, parse_value(value, line_no), name});
    } else if (kind == 'B') {
      // I=<coef>*sinh(V(nA,nB)/<vt>)
      std::string expr;
      ls >> expr;
      if (expr.rfind("I=", 0) != 0)
        fail("MN-SPI-006", line_no, "behavioral card without I= expression");
      const auto star = expr.find('*');
      const auto slash = expr.rfind('/');
      const auto close = expr.rfind(')');
      if (star == std::string::npos || slash == std::string::npos ||
          close == std::string::npos || slash > close)
        fail("MN-SPI-007", line_no,
             "unrecognized sinh expression '" + expr + "'",
             "expected I=<coef>*sinh(V(nA,nB)/<vt>)");
      const double coef =
          parse_value(expr.substr(2, star - 2), line_no);
      const double this_vt =
          parse_value(expr.substr(slash + 1, close - slash - 1), line_no);
      if (!(this_vt > 0.0))
        fail("MN-SPI-010", line_no,
             "non-positive sinh v_t in B-source '" + name + "'",
             "v_t is the device nonlinearity scale and must be > 0");
      if (util::exactly_zero(vt)) {
        vt = this_vt;
      } else if (!util::approx_equal(this_vt, vt)) {
        // The netlist carries ONE device law (Netlist::device()): every
        // B-source's v_t becomes that single nonlinearity_vt. Silently
        // adopting the first card's v_t while deriving each r_state from
        // its own would mis-model every later card.
        fail("MN-SPI-011", line_no,
             "inconsistent sinh v_t in B-source '" + name + "'",
             "all B-sources in a deck must share one v_t (the netlist "
             "has a single device law)");
      }
      const int a = parse_node(na, line_no);
      const int b = parse_node(nb, line_no);
      max_node = std::max({max_node, a, b});
      memristors.push_back({a, b, coef, this_vt, name, line_no});
    } else {
      fail("MN-SPI-008", line_no, "unsupported element '" + head + "'",
           "the MNSIM deck subset is R, C, V and behavioral B cards");
    }
  }

  if (vt > 0.0) device.nonlinearity_vt = units::Volts{vt};
  Netlist nl(device);
  for (int n = 0; n < max_node; ++n) (void)nl.add_node();
  for (const auto& r : resistors) nl.add_resistor(r.a, r.b, r.ohms, r.name);
  for (const auto& c : capacitors)
    nl.add_capacitor(c.a, c.b, c.farads, c.name);
  for (const auto& s : sources) nl.add_source(s.node, s.volts, s.name);
  for (const auto& m : memristors) {
    // I = (vt / r_state) sinh(V / vt)  =>  r_state = vt / coef.
    if (!(m.coef > 0))
      fail("MN-SPI-009", m.line,
           "non-positive sinh coefficient in B-source '" + m.name + "'",
           "the coefficient is vt / r_state and must be > 0");
    nl.add_memristor(m.a, m.b, m.vt / m.coef, m.name);
  }
  if (!structure.empty()) nl.set_wire_structure(std::move(structure));
  nl.validate();
  return nl;
}

}  // namespace mnsim::spice
