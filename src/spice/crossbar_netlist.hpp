// Crossbar network construction for circuit-level simulation.
//
// Builds the full resistor network of an M x N crossbar (paper Sec. VI):
// M*N memristor cells, 2*M*N interconnect segments (r along every row and
// column), N column sense resistors, and M input sources — the network a
// circuit-level simulator must solve where the behavior-level model uses
// Eq. 9-11. Row m is driven from the left; column n is sensed at the
// bottom; the worst-case column of the paper's analysis is the one
// farthest from the drivers (largest n).
#pragma once

#include <vector>

#include "spice/mna.hpp"
#include "spice/netlist.hpp"
#include "tech/memristor.hpp"

namespace mnsim::spice {

struct CrossbarSpec {
  int rows = 32;
  int cols = 32;
  tech::MemristorModel device;
  double segment_resistance = 0.022; // r between neighbouring cells [ohm]
  double sense_resistance = 60.0;    // column load R_s [ohm]
  std::vector<double> input_voltages;              // size rows
  std::vector<std::vector<double>> cell_resistance; // [rows][cols]
  bool linear_memristors = false;    // ablation: ideal linear cells
  bool ideal_wires = false;          // ablation: r = 0 (drop wire segments)
  // When > 0, a grounded capacitor of this value is attached to every
  // wire tap node — the full RC interconnect the behavior model drops
  // (paper Sec. VI-B); used by the transient solver / RC ablation.
  double segment_capacitance = 0.0;

  // Convenience: every input at the device read voltage, every cell at
  // `r_state` (pass device.r_min for the paper's worst case).
  static CrossbarSpec uniform(int rows, int cols,
                              const tech::MemristorModel& device,
                              double segment_resistance,
                              double sense_resistance, double r_state);

  void validate() const;
};

struct CrossbarSolution {
  DcResult dc;
  std::vector<NodeId> column_output_nodes;   // sense node per column
  std::vector<double> column_output_voltage; // V at each sense resistor
  double total_power = 0.0;                  // delivered by the sources
};

// Builds the netlist. If `out_column_nodes` is non-null it receives the
// sense-node id of each column.
Netlist build_crossbar_netlist(const CrossbarSpec& spec,
                               std::vector<NodeId>* out_column_nodes);

// Reusable state for repeated crossbar solves sharing one topology
// (same rows/cols/wiring/device; cell resistances and input voltages
// free to vary): the built netlist, reprogrammed value-only per call,
// and the MNA-level cache (CSR pattern + optional warm start). The
// cache re-primes itself automatically whenever the spec's topology
// stops matching. Copyable so sweep engines can clone a serially
// primed master per worker thread (one cache must never be shared
// between threads); see docs/PERFORMANCE.md. Like MnaCache it is
// deliberately lock-free — per-worker ownership, enforced by worker-slot
// indexing and the parallel-capture analyzer rule, replaces locking
// (see mna.hpp's MnaCache note and util/thread_safety.hpp).
struct CrossbarSolveCache {
  bool valid = false;
  CrossbarSpec key;      // topology fields of the spec the netlist matches
  Netlist netlist;       // built once, values reprogrammed per solve
  std::vector<NodeId> column_nodes;
  MnaCache mna;

  // True when `spec` can be served by value-only reprogramming.
  [[nodiscard]] bool matches(const CrossbarSpec& spec) const;
};

// Builds and solves the DC operating point. When `cache` is non-null the
// netlist and CSR pattern are reused across calls with matching topology
// (value-only reprogramming + refill), and the solve warm-starts from
// cache->mna.warm_start_voltages when the caller set it.
CrossbarSolution solve_crossbar(const CrossbarSpec& spec,
                                const DcOptions& options = {},
                                CrossbarSolveCache* cache = nullptr);

// --- batched crossbar solves ------------------------------------------
//
// Sweep-shaped workloads (Monte-Carlo trials, per-input inference) are
// many solves of one crossbar topology with varying values. This driver
// rides spice::solve_dc_batch: the netlist is built once, preflight and
// pattern priming happen once, and when only input voltages vary (linear
// cells) the structured solver factors once for the whole batch. Results
// are bit-identical to per-entry solve_crossbar calls served from caches
// primed on the base spec, at any thread count.

// Value-only overrides; empty containers keep the base spec's values.
// Non-empty ones must match the base shape (rows / rows x cols).
struct CrossbarBatchEntry {
  std::vector<double> input_voltages;
  std::vector<std::vector<double>> cell_resistance;
};

// The per-entry reduction of a batched solve: what sweep engines score
// on, without retaining every node voltage of every entry.
struct CrossbarBatchResult {
  std::vector<double> column_output_voltage;  // V at each sense resistor
  double total_power = 0.0;                   // delivered by the sources
  bool converged = false;
  SolverDiagnostics diagnostics;
};

// result[i] corresponds to entries[i]. `warm_start_voltages` (by node
// id, typically the base spec's solved operating point; empty = cold)
// seeds every entry identically so results stay schedule-independent.
std::vector<CrossbarBatchResult> solve_crossbar_batch(
    const CrossbarSpec& base, const std::vector<CrossbarBatchEntry>& entries,
    const DcOptions& options = {}, int threads = 1,
    const std::vector<double>& warm_start_voltages = {});

// The ideal (wire-free, linear-cell) column outputs from the voltage
// divider Eq. 9 generalized to per-cell states: the analytic reference
// the error rate is measured against.
std::vector<double> ideal_column_outputs(const CrossbarSpec& spec);

}  // namespace mnsim::spice
