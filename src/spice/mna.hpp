// Modified nodal analysis with Newton iteration.
//
// Solves the DC operating point of a Netlist: node voltages of the
// resistive network with nonlinear memristors. Grounded ideal voltage
// sources pin their nodes, so the unknowns are the free node voltages and
// the system is the (symmetric positive definite) reduced conductance
// matrix — solved with Jacobi-preconditioned conjugate gradients. The
// nonlinear elements are Newton-linearized with the standard companion
// model (conductance = dI/dV at the previous iterate, plus an equivalent
// current source).
//
// This is the same equation system a general-purpose SPICE solves for
// this circuit class; it is the repository's stand-in for the paper's
// HSPICE baseline (DESIGN.md, substitution table).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "numeric/schur.hpp"
#include "numeric/sparse.hpp"
#include "spice/netlist.hpp"

namespace mnsim::spice {

struct DcOptions {
  double newton_tolerance = 1e-9;   // max |dV| between iterations [V]
  int max_newton_iterations = 60;
  double cg_tolerance = 1e-12;
  std::size_t cg_max_iterations = 0;  // 0 = auto (4n + 100)

  // Graceful-degradation ladder for the inner linear solves: a stalled
  // CG is retried warm-started with a larger budget, then falls back to
  // dense LU (bounded by dense_fallback_limit unknowns). With the whole
  // ladder disabled a stalled solve throws, as the historical behavior.
  bool allow_cg_retry = true;
  bool allow_dense_fallback = true;
  std::size_t dense_fallback_limit = 4096;

  // Structure-exploiting rung: when the netlist carries wire-chain
  // metadata (WireStructure, attached by build_crossbar_netlist), try
  // the bipartite Schur solver before generic CG. Acceptance is judged
  // on the true residual, so disabling this only costs performance.
  // Config key: [solver] Structured.
  bool allow_schur = true;

  // Newton step damping: when an iterate comes back non-finite or the
  // update grows instead of shrinking, the step is halved and re-applied,
  // at most `max_damping_retries` times per solve.
  int max_damping_retries = 8;

  // Semantic pre-flight (check/netlist_check.hpp): run the structural
  // analyzer (connectivity via union-find, structural rank via bipartite
  // matching) before assembling anything and throw check::CheckError on
  // a netlist that can only fail numerically. Skipped on cache hits —
  // the topology was vetted when the pattern was primed — so repeated
  // sweeps pay the cost once per structure.
  bool preflight = true;
};

// What the solver actually did — threaded up through DcResult,
// CrossbarSolution and the accelerator report so degraded (retried,
// fallback, damped, non-converged) solves are visible, never silent.
struct SolverDiagnostics {
  int newton_iterations = 0;
  double newton_residual = 0.0;   // final max |dV| of the Newton loop [V]
  long cg_iterations = 0;         // summed over all linear solves
  int cg_retries = 0;             // warm-started CG retries taken
  int lu_fallbacks = 0;           // dense-LU fallback solves taken
  int damped_steps = 0;           // halved Newton steps
  double linear_residual = 0.0;   // worst relative residual of any solve
  int faults_injected = 0;        // defects applied to the netlist's array
  // Sweep-acceleration bookkeeping (docs/PERFORMANCE.md): assemblies
  // that refilled a cached CSR sparsity pattern instead of rebuilding
  // it, and linear solves that warm-started CG from a previous solution
  // of the same topology.
  long cache_hits = 0;
  long warm_starts = 0;
  // Structure-exploiting solver bookkeeping: linear solves served by the
  // bipartite Schur rung, PCG iterations it spent, attempts it rejected
  // back to the generic ladder, and solves that reused a prefactored
  // Schur handle built once for a whole batch (solve_dc_batch).
  long schur_solves = 0;
  long schur_iterations = 0;
  int schur_rejects = 0;
  long factor_reuses = 0;
  // Worst diagonal-growth condition estimate reported by the dense
  // direct rung (0 when that rung never factored a matrix).
  double condition_estimate = 0.0;
  // Worker threads that produced this (aggregated) report; 1 for a
  // single solve, the sweep's pool size after absorb() across a
  // parallel sweep.
  int threads = 1;

  [[nodiscard]] bool degraded() const {
    return cg_retries > 0 || lu_fallbacks > 0 || damped_steps > 0;
  }
  // Aggregation for bank-/accelerator-level reporting.
  void absorb(const SolverDiagnostics& other);
};

// Reusable per-topology solver state for repeated DC solves of netlists
// sharing one structure (same nodes, same element connectivity, values
// free to change): the CSR sparsity pattern of the reduced conductance
// matrix, refilled in place per assembly, and an optional warm-start
// voltage vector (by node id) used as the Newton/CG starting iterate.
//
// One cache serves one structure; solve_dc falls back to a full rebuild
// (and re-primes the cache) whenever the pattern no longer matches. A
// cache must not be shared between threads — sweep engines keep one per
// worker, cloned from a serially primed master so results stay
// schedule-independent (see util/parallel.hpp's determinism contract:
// warm_start_voltages is caller-managed and never auto-updated).
//
// Deliberately carries no mutex and no MN_GUARDED_BY annotations: the
// thread-safety story is compartmentalization, not locking. Each worker
// owns its clone outright, so the hot refill path stays synchronization
// free; the worker-slot indexing that enforces this in the batch solver
// is checked by mnsim-analyze's parallel-capture rule (the compile-time
// capability layer in util/thread_safety.hpp covers the *locked* shared
// state; this struct is the documented lock-free counterpart).
struct MnaCache {
  bool pattern_valid = false;
  numeric::CsrMatrix matrix;             // pattern + last stamped values
  std::vector<double> warm_start_voltages;  // by node id; empty = cold
  long cache_hits = 0;    // assemblies that reused the pattern
  long warm_starts = 0;   // solves that started from warm_start_voltages
  // Wire-structure partition translated to unknown indices (empty when
  // the netlist carries no usable structure); recomputed whenever the
  // pattern is re-primed, like the CSR pattern itself.
  bool partition_valid = false;
  numeric::BipartitePartition partition;
};

struct DcResult {
  std::vector<double> node_voltages;  // index = NodeId (0 = ground = 0 V)
  int newton_iterations = 0;
  // True only when the Newton loop met newton_tolerance; a run that
  // exhausted max_newton_iterations reports false with the final update
  // size in diagnostics.newton_residual.
  bool converged = false;
  SolverDiagnostics diagnostics;

  [[nodiscard]] double voltage(NodeId n) const { return node_voltages[n]; }
};

// Solves the DC operating point. When `cache` is non-null the CSR
// sparsity pattern is reused across calls (values-only refill) and the
// solve warm-starts from cache->warm_start_voltages when set; the
// corresponding cache_hits / warm_starts land in the result's
// diagnostics. Passing nullptr keeps the historical one-shot behavior
// (the pattern is still reused across Newton iterations internally).
DcResult solve_dc(const Netlist& netlist, const DcOptions& options = {},
                  MnaCache* cache = nullptr);

// --- batched DC solves ------------------------------------------------
//
// A sweep-shaped workload — many solves of one topology with varying
// element values — pays per-solve overheads N times through the scalar
// API: preflight, pattern priming, and (for the structured rung) Schur
// extraction + chain factorization. solve_dc_batch amortizes them:
// preflight and assembly pattern are primed once, every entry is served
// from a worker-cloned cache, and when the batch provably shares one
// conductance matrix (linear memristors, no per-entry state overrides)
// the Schur factorization is built once and reused for every entry.
//
// Determinism: results are bit-identical to N independent solve_dc
// calls (each with a fresh cache primed on the base netlist and the
// same warm-start vector) at any thread count. Entries never see each
// other's values, warm starts come only from the fixed base reference,
// and the factor-reuse fast path is decided statically from the batch
// shape — never from per-worker history — so per-entry results and
// diagnostics are schedule-independent.

// Value-only overrides for one batch entry; empty vectors keep the base
// netlist's values. Non-empty vectors must match the base element
// counts exactly (sources / memristors, in insertion order).
struct DcBatchEntry {
  std::vector<double> source_voltages;
  std::vector<double> memristor_states;
};

struct DcBatchOptions {
  DcOptions dc;
  int threads = 1;  // 0 = all hardware threads
  // Warm-start reference by node id (typically the base operating
  // point); applied identically to every entry. Empty = cold starts.
  std::vector<double> warm_start_voltages;
};

// Streaming form: `visit(index, netlist, result)` runs once per entry
// with the worker's netlist programmed to that entry's values — use it
// to reduce (column outputs, power) without retaining every full
// DcResult. Called concurrently for distinct indices; it must be safe
// for that (e.g. write to a preallocated slot per index).
void solve_dc_batch_visit(
    const Netlist& base, const std::vector<DcBatchEntry>& entries,
    const DcBatchOptions& options,
    const std::function<void(std::size_t, const Netlist&, const DcResult&)>&
        visit);

// Collecting form: result[i] corresponds to entries[i].
std::vector<DcResult> solve_dc_batch(const Netlist& base,
                                     const std::vector<DcBatchEntry>& entries,
                                     const DcBatchOptions& options = {});

// Current through a memristor element at the solved operating point
// (positive a -> b); honours the netlist's linear_memristors flag.
double memristor_current(const Netlist& netlist, const MemristorElement& m,
                         const DcResult& dc);

// Total power delivered by all voltage sources at the operating point
// (equals the total dissipation of the resistive network).
double total_source_power(const Netlist& netlist, const DcResult& dc);

}  // namespace mnsim::spice
