// Modified nodal analysis with Newton iteration.
//
// Solves the DC operating point of a Netlist: node voltages of the
// resistive network with nonlinear memristors. Grounded ideal voltage
// sources pin their nodes, so the unknowns are the free node voltages and
// the system is the (symmetric positive definite) reduced conductance
// matrix — solved with Jacobi-preconditioned conjugate gradients. The
// nonlinear elements are Newton-linearized with the standard companion
// model (conductance = dI/dV at the previous iterate, plus an equivalent
// current source).
//
// This is the same equation system a general-purpose SPICE solves for
// this circuit class; it is the repository's stand-in for the paper's
// HSPICE baseline (DESIGN.md, substitution table).
#pragma once

#include <vector>

#include "spice/netlist.hpp"

namespace mnsim::spice {

struct DcOptions {
  double newton_tolerance = 1e-9;   // max |dV| between iterations [V]
  int max_newton_iterations = 60;
  double cg_tolerance = 1e-12;
};

struct DcResult {
  std::vector<double> node_voltages;  // index = NodeId (0 = ground = 0 V)
  int newton_iterations = 0;
  bool converged = false;

  [[nodiscard]] double voltage(NodeId n) const { return node_voltages[n]; }
};

DcResult solve_dc(const Netlist& netlist, const DcOptions& options = {});

// Current through a memristor element at the solved operating point
// (positive a -> b); honours the netlist's linear_memristors flag.
double memristor_current(const Netlist& netlist, const MemristorElement& m,
                         const DcResult& dc);

// Total power delivered by all voltage sources at the operating point
// (equals the total dissipation of the resistive network).
double total_source_power(const Netlist& netlist, const DcResult& dc);

}  // namespace mnsim::spice
