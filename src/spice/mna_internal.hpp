// Shared internals of the MNA solvers (DC and transient): node indexing
// for pinned/free nodes and symmetric conductance stamping with companion
// current sources. Not part of the public API.
#pragma once

#include <vector>

#include "numeric/sparse.hpp"
#include "spice/netlist.hpp"

namespace mnsim::spice::internal {

struct Indexer {
  // Maps node id -> unknown index, or -1 for ground / pinned nodes.
  std::vector<int> unknown_of_node;
  std::vector<double> pinned_voltage;  // by node id (0 where free)
  int unknown_count = 0;
};

Indexer build_indexer(const Netlist& netlist);

// Sink adapter for stamping into a CSR matrix with a frozen sparsity
// pattern (values-only refill). `ok` drops to false when a stamp misses
// the pattern — the caller must then rebuild from a SparseBuilder.
struct CsrRefillSink {
  numeric::CsrMatrix* matrix = nullptr;
  bool ok = true;

  void add(std::size_t row, std::size_t col, double value) {
    if (!matrix->add_at(row, col, value)) ok = false;
  }
};

// Stamps a conductance g between nodes a and b, with an optional parallel
// current source i_src flowing a -> b (companion model), into (A, rhs).
// MatrixSink is anything with add(row, col, value): a SparseBuilder on
// first assembly, a CsrRefillSink when the pattern is cached.
template <typename MatrixSink>
void stamp(const Indexer& ix, MatrixSink& a, std::vector<double>& rhs,
           NodeId na, NodeId nb, double g, double i_src) {
  const int ua = ix.unknown_of_node[na];
  const int ub = ix.unknown_of_node[nb];
  const double va = ua < 0 ? ix.pinned_voltage[na] : 0.0;
  const double vb = ub < 0 ? ix.pinned_voltage[nb] : 0.0;
  if (ua >= 0) {
    a.add(static_cast<std::size_t>(ua), static_cast<std::size_t>(ua), g);
    rhs[static_cast<std::size_t>(ua)] -= i_src;
    if (ub >= 0)
      a.add(static_cast<std::size_t>(ua), static_cast<std::size_t>(ub), -g);
    else
      rhs[static_cast<std::size_t>(ua)] += g * vb;
  }
  if (ub >= 0) {
    a.add(static_cast<std::size_t>(ub), static_cast<std::size_t>(ub), g);
    rhs[static_cast<std::size_t>(ub)] += i_src;
    if (ua >= 0)
      a.add(static_cast<std::size_t>(ub), static_cast<std::size_t>(ua), -g);
    else
      rhs[static_cast<std::size_t>(ub)] += g * va;
  }
}

}  // namespace mnsim::spice::internal
