// Shared internals of the MNA solvers (DC and transient): node indexing
// for pinned/free nodes and symmetric conductance stamping with companion
// current sources. Not part of the public API.
#pragma once

#include <vector>

#include "numeric/sparse.hpp"
#include "spice/netlist.hpp"

namespace mnsim::spice::internal {

struct Indexer {
  // Maps node id -> unknown index, or -1 for ground / pinned nodes.
  std::vector<int> unknown_of_node;
  std::vector<double> pinned_voltage;  // by node id (0 where free)
  int unknown_count = 0;
};

Indexer build_indexer(const Netlist& netlist);

// Stamps a conductance g between nodes a and b, with an optional parallel
// current source i_src flowing a -> b (companion model), into (A, rhs).
void stamp(const Indexer& indexer, numeric::SparseBuilder& matrix,
           std::vector<double>& rhs, NodeId a, NodeId b, double g,
           double i_src);

}  // namespace mnsim::spice::internal
