// Transient (time-domain) circuit simulation.
//
// The behavior-level platform ignores wire capacitance (paper Sec. VI-B,
// approximation 2) and estimates settling with a fixed multiple of the
// Elmore time constant. This backward-Euler transient solver keeps the
// capacitors and integrates the full nonlinear network through a compute
// cycle (step inputs at t = 0), providing the ground truth for both
// approximations: the RC-ablation bench compares Elmore latency, the
// 6-tau behavior estimate, and the measured settling time.
//
// Integration: backward Euler with the standard capacitor companion model
// (G = C/dt in parallel with a history current source), Newton-iterated
// per step for the nonlinear memristors.
#pragma once

#include <vector>

#include "spice/netlist.hpp"

namespace mnsim::spice {

struct TransientOptions {
  double time_step = 1e-12;    // dt [s]
  double end_time = 1e-9;      // total simulated time [s]
  double newton_tolerance = 1e-9;
  int max_newton_iterations = 40;
  double cg_tolerance = 1e-12;
};

struct TransientResult {
  std::vector<double> time;                        // sample instants
  std::vector<std::vector<double>> probe_voltages; // [probe][step]
  bool converged = false;                          // every step converged

  // First instant after which the probe stays within `tolerance`
  // (relative) of its final value; returns end_time when it never
  // settles within the window.
  [[nodiscard]] double settling_time(std::size_t probe,
                                     double tolerance = 0.01) const;
};

// Integrates from all-zero initial conditions with the sources stepping
// to their DC values at t = 0. `probes` selects the recorded nodes.
TransientResult solve_transient(const Netlist& netlist,
                                const std::vector<NodeId>& probes,
                                const TransientOptions& options = {});

}  // namespace mnsim::spice
