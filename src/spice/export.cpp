#include "spice/export.hpp"

#include <cstdio>
#include <sstream>

namespace mnsim::spice {

namespace {

std::string node_name(NodeId n) {
  return n == kGround ? "0" : "n" + std::to_string(n);
}

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string export_spice(const Netlist& nl, const std::string& title) {
  nl.validate();
  std::ostringstream os;
  os << "* " << title << "\n";

  // Wire-structure metadata rides along as comment directives so a
  // re-imported deck keeps the structured solver path (and therefore
  // solves bit-identically); stock SPICE tools skip '*' lines.
  const auto& ws = nl.wire_structure();
  if (!ws.empty()) {
    auto chain_line = [&os](const char* tag, const std::vector<NodeId>& chain) {
      os << "*.mnsim " << tag;
      for (NodeId n : chain) os << ' ' << node_name(n);
      os << "\n";
    };
    for (const auto& c : ws.row_chains) chain_line("rowchain", c);
    for (const auto& c : ws.col_chains) chain_line("colchain", c);
  }

  int auto_id = 0;
  auto name_or = [&auto_id](const std::string& name, const char* prefix) {
    if (!name.empty()) return name;
    return std::string(prefix) + "auto" + std::to_string(auto_id++);
  };

  for (const auto& r : nl.resistors()) {
    os << "R" << name_or(r.name, "r") << ' ' << node_name(r.a) << ' '
       << node_name(r.b) << ' ' << fmt(r.ohms) << "\n";
  }
  for (const auto& c : nl.capacitors()) {
    os << "C" << name_or(c.name, "c") << ' ' << node_name(c.a) << ' '
       << node_name(c.b) << ' ' << fmt(c.farads) << "\n";
  }
  for (const auto& s : nl.sources()) {
    os << "V" << name_or(s.name, "v") << ' ' << node_name(s.node) << " 0 DC "
       << fmt(s.volts) << "\n";
  }
  const auto& dev = nl.device();
  for (const auto& m : nl.memristors()) {
    if (nl.linear_memristors()) {
      os << "R" << name_or(m.name, "x") << ' ' << node_name(m.a) << ' '
         << node_name(m.b) << ' ' << fmt(m.r_state) << "\n";
    } else {
      // Behavioral element: I = (vt / R) * sinh(V / vt).
      os << "B" << name_or(m.name, "x") << ' ' << node_name(m.a) << ' '
         << node_name(m.b) << " I="
         << fmt(dev.nonlinearity_vt.value() / m.r_state)
         << "*sinh(V(" << node_name(m.a) << ',' << node_name(m.b) << ")/"
         << fmt(dev.nonlinearity_vt.value()) << ")\n";
    }
  }
  os << ".op\n.end\n";
  return os.str();
}

}  // namespace mnsim::spice
