// SPICE netlist text export (paper Sec. IV-A: "MNSIM can generate the
// netlist file for circuit-level simulators like SPICE").
//
// Memristors are emitted as behavioral current sources implementing the
// same sinh V-I law the internal solver uses, so the exported deck and
// the in-process solve describe the identical circuit.
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace mnsim::spice {

// Renders a .sp deck: title, element cards, .op, .end.
std::string export_spice(const Netlist& netlist,
                         const std::string& title = "mnsim netlist");

}  // namespace mnsim::spice
