// Circuit-level latency estimation.
//
// The behavior-level model ignores wire capacitance (paper Sec. VI-B);
// the circuit-level baseline keeps it for latency: the settling time of a
// crossbar column is estimated from the Elmore delay of the distributed
// RC line loaded by the column's parallel resistance, settled to within
// half an LSB of the output precision.
#pragma once

#include "spice/crossbar_netlist.hpp"

namespace mnsim::spice {

// Elmore time constant of the worst-case (farthest) column [s].
// `segment_capacitance` is the wire capacitance between neighbouring
// cells; the cells themselves contribute their parallel resistance as the
// driver impedance.
double crossbar_elmore_tau(const CrossbarSpec& spec,
                           double segment_capacitance);

// Settling latency to `output_bits` precision: ln(2^bits) time constants
// plus the device read latency.
double crossbar_settling_latency(const CrossbarSpec& spec,
                                 double segment_capacitance, int output_bits);

}  // namespace mnsim::spice
