#include "spice/netlist.hpp"

#include <stdexcept>

#include "check/netlist_check.hpp"

namespace mnsim::spice {

NodeId Netlist::add_node() { return next_node_++; }

void Netlist::check_node(NodeId n) const {
  if (n < 0 || n >= next_node_)
    throw std::invalid_argument("Netlist: node id " + std::to_string(n) +
                                " not allocated");
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms,
                           std::string name) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0)) throw std::invalid_argument("Netlist: resistance <= 0");
  if (a == b) throw std::invalid_argument("Netlist: resistor shorted");
  resistors_.push_back({a, b, ohms, std::move(name)});
}

void Netlist::add_memristor(NodeId a, NodeId b, double r_state,
                            std::string name) {
  check_node(a);
  check_node(b);
  if (!(r_state > 0))
    throw std::invalid_argument("Netlist: memristor state <= 0");
  if (a == b) throw std::invalid_argument("Netlist: memristor shorted");
  memristors_.push_back({a, b, r_state, std::move(name)});
}

void Netlist::add_source(NodeId node, double volts, std::string name) {
  check_node(node);
  if (node == kGround)
    throw std::invalid_argument("Netlist: source on ground node");
  sources_.push_back({node, volts, std::move(name)});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads,
                            std::string name) {
  check_node(a);
  check_node(b);
  if (!(farads > 0)) throw std::invalid_argument("Netlist: capacitance <= 0");
  capacitors_.push_back({a, b, farads, std::move(name)});
}

void Netlist::set_memristor_state(std::size_t index, double r_state) {
  if (index >= memristors_.size())
    throw std::out_of_range("Netlist: memristor index");
  if (!(r_state > 0))
    throw std::invalid_argument("Netlist: memristor state <= 0");
  memristors_[index].r_state = r_state;
}

void Netlist::set_source_voltage(std::size_t index, double volts) {
  if (index >= sources_.size())
    throw std::out_of_range("Netlist: source index");
  sources_[index].volts = volts;
}

void Netlist::validate() const {
  // Thin wrapper over the semantic analyzer's invariant pass
  // (check/netlist_check.hpp) kept for API compatibility: callers that
  // expect std::invalid_argument still get one, now carrying the first
  // diagnostic's full message (which names the conflicting sources
  // instead of just the node).
  const check::DiagnosticList diags = check::check_netlist_invariants(*this);
  if (!diags.has_errors()) return;
  std::string message;
  std::size_t errors = 0;
  for (const auto& d : diags) {
    if (d.severity != check::Severity::kError) continue;
    if (errors == 0) message = "Netlist: " + d.message + " [" + d.code + "]";
    ++errors;
  }
  if (errors > 1)
    message += " (and " + std::to_string(errors - 1) + " more)";
  throw std::invalid_argument(message);
}

}  // namespace mnsim::spice
