#include "spice/netlist.hpp"

#include <stdexcept>

namespace mnsim::spice {

NodeId Netlist::add_node() { return next_node_++; }

void Netlist::check_node(NodeId n) const {
  if (n < 0 || n >= next_node_)
    throw std::invalid_argument("Netlist: node id " + std::to_string(n) +
                                " not allocated");
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms,
                           std::string name) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0)) throw std::invalid_argument("Netlist: resistance <= 0");
  if (a == b) throw std::invalid_argument("Netlist: resistor shorted");
  resistors_.push_back({a, b, ohms, std::move(name)});
}

void Netlist::add_memristor(NodeId a, NodeId b, double r_state,
                            std::string name) {
  check_node(a);
  check_node(b);
  if (!(r_state > 0))
    throw std::invalid_argument("Netlist: memristor state <= 0");
  if (a == b) throw std::invalid_argument("Netlist: memristor shorted");
  memristors_.push_back({a, b, r_state, std::move(name)});
}

void Netlist::add_source(NodeId node, double volts, std::string name) {
  check_node(node);
  if (node == kGround)
    throw std::invalid_argument("Netlist: source on ground node");
  sources_.push_back({node, volts, std::move(name)});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads,
                            std::string name) {
  check_node(a);
  check_node(b);
  if (!(farads > 0)) throw std::invalid_argument("Netlist: capacitance <= 0");
  capacitors_.push_back({a, b, farads, std::move(name)});
}

void Netlist::set_memristor_state(std::size_t index, double r_state) {
  if (index >= memristors_.size())
    throw std::out_of_range("Netlist: memristor index");
  if (!(r_state > 0))
    throw std::invalid_argument("Netlist: memristor state <= 0");
  memristors_[index].r_state = r_state;
}

void Netlist::set_source_voltage(std::size_t index, double volts) {
  if (index >= sources_.size())
    throw std::out_of_range("Netlist: source index");
  sources_[index].volts = volts;
}

void Netlist::validate() const {
  // Construction already validates; re-check source uniqueness here.
  std::vector<bool> pinned(static_cast<std::size_t>(next_node_), false);
  for (const auto& s : sources_) {
    if (pinned[static_cast<std::size_t>(s.node)])
      throw std::invalid_argument("Netlist: node " + std::to_string(s.node) +
                                  " pinned by two sources");
    pinned[static_cast<std::size_t>(s.node)] = true;
  }
}

}  // namespace mnsim::spice
