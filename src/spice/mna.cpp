#include "spice/mna.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/netlist_check.hpp"
#include "numeric/resilient.hpp"
#include "numeric/sparse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spice/mna_internal.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace mnsim::spice {

namespace internal {

Indexer build_indexer(const Netlist& nl) {
  const int nodes = nl.node_count() + 1;  // include ground slot
  Indexer ix;
  ix.unknown_of_node.assign(nodes, -2);
  ix.pinned_voltage.assign(nodes, 0.0);
  ix.unknown_of_node[kGround] = -1;
  for (const auto& s : nl.sources()) {
    ix.unknown_of_node[s.node] = -1;
    ix.pinned_voltage[s.node] = s.volts;
  }
  for (int n = 1; n < nodes; ++n) {
    if (ix.unknown_of_node[n] == -2)
      ix.unknown_of_node[n] = ix.unknown_count++;
  }
  return ix;
}

}  // namespace internal

using internal::build_indexer;
using internal::CsrRefillSink;
using internal::Indexer;
using internal::stamp;

void SolverDiagnostics::absorb(const SolverDiagnostics& other) {
  newton_iterations += other.newton_iterations;
  newton_residual = std::max(newton_residual, other.newton_residual);
  cg_iterations += other.cg_iterations;
  cg_retries += other.cg_retries;
  lu_fallbacks += other.lu_fallbacks;
  damped_steps += other.damped_steps;
  linear_residual = std::max(linear_residual, other.linear_residual);
  faults_injected += other.faults_injected;
  cache_hits += other.cache_hits;
  warm_starts += other.warm_starts;
  schur_solves += other.schur_solves;
  schur_iterations += other.schur_iterations;
  schur_rejects += other.schur_rejects;
  factor_reuses += other.factor_reuses;
  condition_estimate = std::max(condition_estimate, other.condition_estimate);
  threads = std::max(threads, other.threads);
}

namespace {

// Stamps every element of `nl` into (sink, rhs) with the companion model
// linearized around `voltages` (by node id). One call = one assembly.
template <typename MatrixSink>
void assemble(const Netlist& nl, const Indexer& ix,
              const std::vector<double>& voltages, MatrixSink& sink,
              std::vector<double>& rhs) {
  const auto& dev = nl.device();
  // The sinh/cosh companion model overflows for iterates far outside the
  // physical range; clamp the argument so a wild Newton step degrades
  // into damping instead of NaN propagation.

  for (const auto& r : nl.resistors())
    stamp(ix, sink, rhs, r.a, r.b, 1.0 / r.ohms, 0.0);

  for (const auto& m : nl.memristors()) {
    if (nl.linear_memristors()) {
      stamp(ix, sink, rhs, m.a, m.b, 1.0 / m.r_state, 0.0);
      continue;
    }
    // Companion model around the previous iterate, linearized at the
    // saturated point vc = clamp(v0, +-max_arg * vt):
    //   I(v) ~= I(vc) + g_d (v - vc), g_d = dI/dV(vc)
    // stamped as conductance g_d plus current source I(vc) - g_d vc.
    // Linearizing at vc (not v0) keeps the tangent consistent with the
    // point the law was evaluated at when an iterate overshoots.
    const double v0 = voltages[m.a] - voltages[m.b];
    const double vt = dev.nonlinearity_vt.value();
    const double vc = std::clamp(v0, -tech::kMaxSinhArg * vt,
                                 tech::kMaxSinhArg * vt);
    const double a_coef = vt / m.r_state;
    const double i0 = a_coef * std::sinh(vc / vt);
    const double gd = std::cosh(vc / vt) / m.r_state;
    stamp(ix, sink, rhs, m.a, m.b, gd, i0 - gd * vc);
  }
}

// Translates wire-chain node ids to reduced-system unknown indices. An
// unusable structure (a pinned node inside a chain, chains that do not
// cover every unknown exactly once) yields an empty partition — the
// solver then simply skips the Schur rung.
numeric::BipartitePartition translate_partition(const WireStructure& ws,
                                                const Indexer& ix,
                                                std::size_t n_unknowns) {
  numeric::BipartitePartition p;
  std::size_t covered = 0;
  const auto convert = [&](const std::vector<std::vector<NodeId>>& chains,
                           std::vector<std::vector<std::size_t>>& out) {
    out.reserve(chains.size());
    for (const auto& chain : chains) {
      std::vector<std::size_t> c;
      c.reserve(chain.size());
      for (NodeId node : chain) {
        if (node <= 0 ||
            static_cast<std::size_t>(node) >= ix.unknown_of_node.size())
          return false;
        const int u = ix.unknown_of_node[static_cast<std::size_t>(node)];
        if (u < 0) return false;
        c.push_back(static_cast<std::size_t>(u));
      }
      if (!c.empty()) {
        covered += c.size();
        out.push_back(std::move(c));
      }
    }
    return true;
  };
  if (!convert(ws.row_chains, p.eliminated_chains) ||
      !convert(ws.col_chains, p.kept_chains) || covered != n_unknowns)
    return {};
  return p;
}

// The actual solve; the public solve_dc wraps it in a trace span and
// publishes the diagnostics into the metrics registry on every exit
// path. `prefactored` is the batch engine's factor-once Schur handle
// (null outside solve_dc_batch); it is only consulted while the cached
// matrix is being value-refilled, i.e. while the batch's shared-matrix
// guarantee holds.
DcResult solve_dc_impl(const Netlist& nl, const DcOptions& opt,
                       MnaCache* cache,
                       const numeric::SchurFactorization* prefactored) {
  // Refuse-with-diagnosis: vet the topology before any numeric work.
  // A cache with a valid pattern means this structure already passed, so
  // sweep iterations skip straight to assembly.
  const bool vetted = cache != nullptr && cache->pattern_valid;
  if (opt.preflight && !vetted) {
    obs::Span span("spice.preflight");
    check::DiagnosticList diags = check::check_netlist(nl);
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
  } else {
    nl.validate();
  }
  const Indexer ix = build_indexer(nl);
  const int nodes = nl.node_count() + 1;
  const auto n_unknowns = static_cast<std::size_t>(ix.unknown_count);

  // The pattern slot: the caller's cache when supplied (reuse across
  // solves), otherwise a local one so Newton iterations within this solve
  // still refill instead of rebuilding. Counters only track cross-solve
  // reuse — the thing sweeps care about — so they stay zero without an
  // external cache.
  MnaCache local_cache;
  const bool external = cache != nullptr;
  MnaCache& mc = external ? *cache : local_cache;

  // Unknown-index partition for the Schur rung, cached alongside the
  // CSR pattern (it encodes the same topology). A failed mid-solve
  // refill invalidates both.
  const numeric::BipartitePartition* partition = nullptr;
  if (opt.allow_schur && !nl.wire_structure().empty()) {
    if (!mc.partition_valid) {
      mc.partition = translate_partition(nl.wire_structure(), ix, n_unknowns);
      mc.partition_valid = true;
    }
    if (!mc.partition.empty()) partition = &mc.partition;
  }

  DcResult result;
  result.node_voltages.assign(nodes, 0.0);
  const bool warm =
      external &&
      mc.warm_start_voltages.size() == static_cast<std::size_t>(nodes);
  for (int n = 0; n < nodes; ++n) {
    if (ix.unknown_of_node[n] < 0)
      result.node_voltages[n] = ix.pinned_voltage[n];
    else if (warm)
      result.node_voltages[n] = mc.warm_start_voltages[n];
  }
  if (warm) {
    ++result.diagnostics.warm_starts;
    ++mc.warm_starts;
  }

  const bool nonlinear = !nl.linear_memristors() && !nl.memristors().empty();
  const int max_iter = nonlinear ? opt.max_newton_iterations : 1;

  double prev_delta = 0.0;
  int damping_budget = std::max(opt.max_damping_retries, 0);

  for (int it = 0; it < max_iter; ++it) {
    // Watchdog poll between Newton iterations (util/cancel.hpp); the
    // inner CG/LU rungs poll at finer granularity.
    util::throw_if_cancelled("spice.newton");
    obs::Span iter_span("spice.newton_iteration");
    std::vector<double> rhs(n_unknowns, 0.0);

    // Assembly: refill the cached CSR pattern in place when its topology
    // matches, else (first solve, or structure changed) rebuild from a
    // SparseBuilder and re-prime the cache.
    bool refilled = false;
    {
      obs::Span asm_span("spice.assemble");
      if (mc.pattern_valid && mc.matrix.size() == n_unknowns) {
        mc.matrix.zero_values();
        CsrRefillSink sink{&mc.matrix};
        assemble(nl, ix, result.node_voltages, sink, rhs);
        if (sink.ok) {
          refilled = true;
        } else {
          std::fill(rhs.begin(), rhs.end(), 0.0);
          mc.pattern_valid = false;
          // The structure this solve was indexed against has changed;
          // the cached partition (and any prefactored handle built on
          // it) no longer describes this matrix.
          mc.partition_valid = false;
          partition = nullptr;
          prefactored = nullptr;
        }
      }
      if (!refilled) {
        numeric::SparseBuilder builder(n_unknowns);
        assemble(nl, ix, result.node_voltages, builder, rhs);
        mc.matrix = numeric::CsrMatrix(builder);
        mc.pattern_valid = true;
      } else if (external) {
        ++result.diagnostics.cache_hits;
        ++mc.cache_hits;
      }
    }
    const numeric::CsrMatrix& a = mc.matrix;

    // Warm-start the inner CG from the current iterate whenever it is
    // informative: always past the first Newton iteration, and on the
    // first one when the cache supplied a reference solution. The guess
    // depends only on the netlist and the cache contents — never on
    // sweep scheduling — so parallel runs stay bit-identical to serial.
    std::vector<double> guess;
    const bool have_guess = warm || it > 0;
    if (have_guess) {
      guess.resize(n_unknowns);
      for (int n = 1; n < nodes; ++n) {
        const int u = ix.unknown_of_node[n];
        if (u >= 0) guess[static_cast<std::size_t>(u)] =
            result.node_voltages[n];
      }
    }

    numeric::ResilientSolveOptions solve_opt;
    solve_opt.tolerance = opt.cg_tolerance;
    solve_opt.max_iterations = opt.cg_max_iterations;
    solve_opt.allow_cg_retry = opt.allow_cg_retry;
    solve_opt.allow_dense_fallback = opt.allow_dense_fallback;
    solve_opt.dense_fallback_limit = opt.dense_fallback_limit;
    solve_opt.initial_guess = have_guess ? &guess : nullptr;
    solve_opt.partition = partition;
    // The batch engine's factor-once handle is only valid while the
    // matrix is a value-refill of the pattern it was built from.
    solve_opt.schur_factorization =
        (prefactored != nullptr && refilled) ? prefactored : nullptr;
    const auto solve = [&] {
      obs::Span solve_span("spice.linear_solve");
      return numeric::solve_spd_resilient(a, rhs, solve_opt);
    }();
    result.diagnostics.cg_iterations +=
        static_cast<long>(solve.cg_iterations);
    result.diagnostics.cg_retries += solve.cg_retries;
    result.diagnostics.lu_fallbacks += solve.lu_fallbacks;
    result.diagnostics.schur_iterations +=
        static_cast<long>(solve.schur_iterations);
    result.diagnostics.schur_rejects += solve.schur_rejects;
    if (solve.method == numeric::SolveMethod::kSchur) {
      ++result.diagnostics.schur_solves;
      if (solve_opt.schur_factorization != nullptr)
        ++result.diagnostics.factor_reuses;
    }
    result.diagnostics.condition_estimate = std::max(
        result.diagnostics.condition_estimate, solve.condition_estimate);
    result.diagnostics.linear_residual = std::max(
        result.diagnostics.linear_residual, solve.relative_residual);
    if (!solve.converged)
      throw std::runtime_error(
          "solve_dc: linear solve failed (CG stalled and no fallback "
          "succeeded)");

    // Newton update with step damping: a non-finite iterate, or an update
    // that doubles instead of contracting, takes a half step (repeatedly,
    // within the damping budget) from the previous iterate.
    double damping = 1.0;
    double max_delta = 0.0;
    for (;;) {
      max_delta = 0.0;
      bool bad = false;
      for (int n = 1; n < nodes; ++n) {
        const int u = ix.unknown_of_node[n];
        if (u < 0) continue;
        const double target = solve.x[u];
        if (!std::isfinite(target)) {
          bad = true;
          break;
        }
        const double stepped = result.node_voltages[n] +
                               damping * (target - result.node_voltages[n]);
        max_delta = std::max(
            max_delta, std::fabs(stepped - result.node_voltages[n]));
      }
      const bool diverging = nonlinear && it > 0 && prev_delta > 0 &&
                             max_delta > 2.0 * prev_delta;
      if ((bad || diverging) && damping_budget > 0) {
        damping *= 0.5;
        --damping_budget;
        ++result.diagnostics.damped_steps;
        continue;
      }
      if (bad) {
        // Out of damping budget with a non-finite step: keep the previous
        // iterate and report non-convergence honestly.
        result.diagnostics.newton_iterations = result.newton_iterations;
        result.diagnostics.newton_residual = prev_delta;
        result.converged = false;
        return result;
      }
      break;
    }
    for (int n = 1; n < nodes; ++n) {
      const int u = ix.unknown_of_node[n];
      if (u < 0) continue;
      result.node_voltages[n] =
          result.node_voltages[n] +
          damping * (solve.x[u] - result.node_voltages[n]);
    }
    prev_delta = max_delta;
    result.newton_iterations = it + 1;
    result.diagnostics.newton_iterations = result.newton_iterations;
    result.diagnostics.newton_residual = max_delta;
    if (!nonlinear || max_delta < opt.newton_tolerance) {
      result.converged = true;
      break;
    }
  }
  if (!nonlinear) result.converged = true;
  return result;
}

// The traced + metered entry every public solve goes through; the batch
// engine calls it per entry so batched solves are observable exactly
// like scalar ones.
DcResult solve_dc_traced(const Netlist& nl, const DcOptions& opt,
                         MnaCache* cache,
                         const numeric::SchurFactorization* prefactored) {
  obs::Span span("spice.solve_dc");
  DcResult result = solve_dc_impl(nl, opt, cache, prefactored);

  // Publish the per-solve diagnostics into the uniform metrics layer.
  // The struct keeps riding in DcResult for per-result reporting; the
  // registry aggregates across every solve of the process, whichever
  // sweep engine drove them.
  obs::Registry& reg = obs::Registry::global();
  if (reg.enabled()) {
    const SolverDiagnostics& d = result.diagnostics;
    reg.add("spice.solves");
    reg.add("spice.newton_iterations", d.newton_iterations);
    reg.add("spice.cg_iterations", d.cg_iterations);
    if (d.cg_retries) reg.add("spice.cg_retries", d.cg_retries);
    if (d.lu_fallbacks) reg.add("spice.lu_fallbacks", d.lu_fallbacks);
    if (d.damped_steps) reg.add("spice.damped_steps", d.damped_steps);
    if (d.cache_hits) reg.add("spice.cache_hits", d.cache_hits);
    if (d.warm_starts) reg.add("spice.warm_starts", d.warm_starts);
    if (d.schur_solves) reg.add("spice.schur_solves", d.schur_solves);
    if (d.schur_iterations)
      reg.add("spice.schur_iterations", d.schur_iterations);
    if (d.schur_rejects) reg.add("spice.schur_rejects", d.schur_rejects);
    if (d.factor_reuses) reg.add("spice.factor_reuses", d.factor_reuses);
    if (!result.converged) reg.add("spice.nonconverged_solves");
    reg.observe("spice.linear_residual", d.linear_residual);
  }
  return result;
}

}  // namespace

DcResult solve_dc(const Netlist& nl, const DcOptions& opt, MnaCache* cache) {
  return solve_dc_traced(nl, opt, cache, nullptr);
}

void solve_dc_batch_visit(
    const Netlist& base, const std::vector<DcBatchEntry>& entries,
    const DcBatchOptions& opt,
    const std::function<void(std::size_t, const Netlist&, const DcResult&)>&
        visit) {
  obs::Span span("spice.solve_dc_batch");
  if (entries.empty()) return;

  const std::size_t n_src = base.sources().size();
  const std::size_t n_mem = base.memristors().size();
  for (const auto& e : entries) {
    if (!e.source_voltages.empty() && e.source_voltages.size() != n_src)
      throw std::invalid_argument(
          "solve_dc_batch: entry source_voltages size mismatch");
    if (!e.memristor_states.empty() && e.memristor_states.size() != n_mem)
      throw std::invalid_argument(
          "solve_dc_batch: entry memristor_states size mismatch");
  }

  // Vet the topology once — value overrides cannot change structure, so
  // per-entry preflight would re-prove the same facts N times.
  if (opt.dc.preflight) {
    obs::Span preflight_span("spice.preflight");
    check::DiagnosticList diags = check::check_netlist(base);
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
  } else {
    base.validate();
  }

  // Prime the master cache with one assembly of the base netlist: the
  // CSR pattern (and the partition) depend only on topology, so every
  // worker clone starts with a valid pattern and each entry is a pure
  // value-refill — the same floats a fresh build would produce.
  const Indexer ix = build_indexer(base);
  const int nodes = base.node_count() + 1;
  const auto n_unknowns = static_cast<std::size_t>(ix.unknown_count);
  MnaCache master;
  {
    obs::Span asm_span("spice.assemble");
    std::vector<double> voltages(static_cast<std::size_t>(nodes), 0.0);
    for (int n = 0; n < nodes; ++n)
      if (ix.unknown_of_node[static_cast<std::size_t>(n)] < 0)
        voltages[static_cast<std::size_t>(n)] =
            ix.pinned_voltage[static_cast<std::size_t>(n)];
    std::vector<double> rhs(n_unknowns, 0.0);
    numeric::SparseBuilder builder(n_unknowns);
    assemble(base, ix, voltages, builder, rhs);
    master.matrix = numeric::CsrMatrix(builder);
    master.pattern_valid = true;
  }
  if (opt.warm_start_voltages.size() == static_cast<std::size_t>(nodes))
    master.warm_start_voltages = opt.warm_start_voltages;

  if (opt.dc.allow_schur && !base.wire_structure().empty()) {
    master.partition =
        translate_partition(base.wire_structure(), ix, n_unknowns);
    master.partition_valid = true;
  }

  // Factor-once fast path, decided statically from the batch shape so
  // results and diagnostics cannot depend on scheduling: with linear
  // memristors and no per-entry state overrides, every entry's
  // conductance matrix is value-identical to the master's (sources only
  // enter the right-hand side), so one Schur factorization serves the
  // whole batch.
  const bool linear = base.linear_memristors() || base.memristors().empty();
  bool shared_matrix = linear;
  for (const auto& e : entries)
    if (!e.memristor_states.empty()) {
      shared_matrix = false;
      break;
    }
  numeric::SchurFactorization prefactored;
  if (shared_matrix && master.partition_valid &&
      !master.partition.empty()) {
    obs::Span factor_span("numeric.batch");
    prefactored =
        numeric::SchurFactorization::build(master.matrix, master.partition);
  }
  const numeric::SchurFactorization* handle =
      prefactored.valid() ? &prefactored : nullptr;

  DcOptions entry_opt = opt.dc;
  entry_opt.preflight = false;  // vetted above; clones carry a valid pattern

  util::ThreadPool pool(opt.threads);
  // Master-cache-plus-clones: every mutable object the entry loop below
  // touches is either indexed by `worker` (caches, netlists, dirty
  // flags — one slot per pool worker, never shared) or internally
  // locked (the obs registry). MnaCache itself is deliberately
  // lock-free (see mna.hpp) — this worker-slot discipline, checked by
  // mnsim-analyze's parallel-capture rule, is what makes that safe.
  std::vector<MnaCache> caches(pool.worker_count(), master);
  std::vector<Netlist> netlists(pool.worker_count(), base);
  // Workers restore base values before an entry that does not override
  // them, so entries never see a previous entry's programming.
  std::vector<double> base_sources(n_src), base_states(n_mem);
  for (std::size_t s = 0; s < n_src; ++s)
    base_sources[s] = base.sources()[s].volts;
  for (std::size_t m = 0; m < n_mem; ++m)
    base_states[m] = base.memristors()[m].r_state;
  std::vector<char> src_dirty(pool.worker_count(), 0);
  std::vector<char> mem_dirty(pool.worker_count(), 0);

  obs::Registry& reg = obs::Registry::global();
  if (reg.enabled()) {
    reg.add("spice.dc_batches");
    reg.add("spice.dc_batch_entries", static_cast<long>(entries.size()));
  }

  pool.for_each_index(
      entries.size(), [&](std::size_t index, std::size_t worker) {
        Netlist& nl = netlists[worker];
        const DcBatchEntry& e = entries[index];
        if (!e.source_voltages.empty()) {
          for (std::size_t s = 0; s < n_src; ++s)
            nl.set_source_voltage(s, e.source_voltages[s]);
          src_dirty[worker] = 1;
        } else if (src_dirty[worker]) {
          for (std::size_t s = 0; s < n_src; ++s)
            nl.set_source_voltage(s, base_sources[s]);
          src_dirty[worker] = 0;
        }
        if (!e.memristor_states.empty()) {
          for (std::size_t m = 0; m < n_mem; ++m)
            nl.set_memristor_state(m, e.memristor_states[m]);
          mem_dirty[worker] = 1;
        } else if (mem_dirty[worker]) {
          for (std::size_t m = 0; m < n_mem; ++m)
            nl.set_memristor_state(m, base_states[m]);
          mem_dirty[worker] = 0;
        }
        const DcResult result =
            solve_dc_traced(nl, entry_opt, &caches[worker], handle);
        visit(index, nl, result);
      });
}

std::vector<DcResult> solve_dc_batch(const Netlist& base,
                                     const std::vector<DcBatchEntry>& entries,
                                     const DcBatchOptions& options) {
  std::vector<DcResult> out(entries.size());
  solve_dc_batch_visit(
      base, entries, options,
      [&out](std::size_t index, const Netlist&, const DcResult& result) {
        out[index] = result;
      });
  return out;
}

double memristor_current(const Netlist& nl, const MemristorElement& m,
                         const DcResult& dc) {
  const double v = dc.voltage(m.a) - dc.voltage(m.b);
  if (nl.linear_memristors()) return v / m.r_state;
  return nl.device()
      .current(units::Ohms{m.r_state}, units::Volts{v})
      .value();
}

double total_source_power(const Netlist& nl, const DcResult& dc) {
  // P = sum over sources of V * I(source). The source current equals the
  // sum of element currents leaving the pinned node.
  double power = 0.0;
  for (const auto& s : nl.sources()) {
    double i_out = 0.0;
    for (const auto& r : nl.resistors()) {
      if (r.a == s.node)
        i_out += (dc.voltage(r.a) - dc.voltage(r.b)) / r.ohms;
      else if (r.b == s.node)
        i_out += (dc.voltage(r.b) - dc.voltage(r.a)) / r.ohms;
    }
    for (const auto& m : nl.memristors()) {
      if (m.a == s.node)
        i_out += memristor_current(nl, m, dc);
      else if (m.b == s.node)
        i_out -= memristor_current(nl, m, dc);
    }
    power += s.volts * i_out;
  }
  return power;
}

}  // namespace mnsim::spice
