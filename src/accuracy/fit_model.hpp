// Calibration of the behavior-level accuracy model against the
// circuit-level baseline (the paper's Fig. 5 procedure).
//
// The paper simulates the output-voltage error of crossbars over M, N and
// r in SPICE and fits the Eq. 11 relationship; the fitted curve's RMSE is
// below 0.01. Here the "SPICE" samples come from spice::solve_crossbar
// (the full nonlinear resistor network). The fitted quantity is the
// shared-current wire coefficient alpha of
// tech::effective_wire_segments: each circuit-level sample implies an
// effective wire segment count through the Eq. 11 divider, and alpha is
// the least-squares slope of implied segments against (M^2 + N^2)/2.
#pragma once

#include <vector>

#include "accuracy/voltage_error.hpp"

namespace mnsim::accuracy {

struct FitSample {
  int size = 0;               // square crossbar M = N
  int interconnect_node = 0;  // nm
  double model_error = 0.0;   // fitted-model worst-case |error rate|
  double spice_error = 0.0;   // circuit-level worst-case |error rate|
};

struct AccuracyFit {
  double alpha = tech::kSharedCurrentAlpha;  // fitted wire coefficient
  double rmse = 0.0;     // error-rate residual of the fitted curve
  double max_abs = 0.0;
  std::vector<FitSample> samples;
};

// Runs the calibration sweep: for each (size, node) solves the worst-case
// crossbar (all cells at r_min) circuit-level, fits alpha, then reports
// per-sample fitted-model vs circuit-level error rates. Sizes much above
// 128 make the circuit-level solve expensive; the defaults of the Fig. 5
// bench sweep {8..128}.
AccuracyFit calibrate_against_spice(
    const std::vector<int>& sizes, const std::vector<int>& interconnect_nodes,
    const tech::MemristorModel& device, units::Ohms sense_resistance);

}  // namespace mnsim::accuracy
