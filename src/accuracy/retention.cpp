#include "accuracy/retention.hpp"

#include <cmath>
#include <stdexcept>
#include "util/fp.hpp"

namespace mnsim::accuracy {

double drift_exponent(tech::DeviceKind kind) {
  switch (kind) {
    case tech::DeviceKind::kPcm:
      return 0.08;  // amorphous-phase relaxation
    case tech::DeviceKind::kRram:
      return 0.005;  // weak filament relaxation
    case tech::DeviceKind::kSttMram:
      return 0.0;  // bistable magnetization: no analog drift
  }
  throw std::logic_error("drift_exponent: unreachable");
}

double drift_factor(double nu, double elapsed, double reference_time) {
  if (nu < 0) throw std::invalid_argument("drift_factor: nu must be >= 0");
  if (!(reference_time > 0))
    throw std::invalid_argument("drift_factor: reference time");
  if (elapsed <= reference_time || util::exactly_zero(nu)) return 1.0;
  return std::pow(elapsed / reference_time, nu);
}

namespace {

// Worst-case error with every programmed state inflated by the drift
// factor: the scaled Eq. 11 kernel against the fresh ideal, worst column,
// all cells at r_min; magnitudes of the (opposing) fresh nonlinearity and
// the drift-plus-wire deviations bound as in estimate_voltage_error.
double worst_error_at(const CrossbarErrorInputs& base, double drift) {
  CrossbarErrorInputs in = base;
  in.device.sigma = 0.0;
  const double w =
      tech::effective_wire_segments(in.rows, in.cols, in.wire_alpha);
  const double signed_drifted =
      relative_output_error_scaled(in, in.device.r_min, w, drift);
  const double signed_fresh =
      relative_output_error_scaled(in, in.device.r_min, w, 1.0);
  const auto fresh = estimate_voltage_error(in);
  return fresh.worst + std::fabs(signed_drifted - signed_fresh);
}

}  // namespace

std::vector<RetentionPoint> retention_sweep(
    const CrossbarErrorInputs& inputs, double nu,
    const std::vector<double>& ages) {
  inputs.validate();
  std::vector<RetentionPoint> out;
  out.reserve(ages.size());
  for (double age : ages) {
    RetentionPoint p;
    p.elapsed = age;
    p.drift = drift_factor(nu, age);
    p.worst_error = worst_error_at(inputs, p.drift);
    out.push_back(p);
  }
  return out;
}

double retuning_interval(const CrossbarErrorInputs& inputs, double nu,
                         double error_budget, double horizon) {
  inputs.validate();
  if (!(error_budget > 0))
    throw std::invalid_argument("retuning_interval: error budget");
  if (!(horizon > 1.0))
    throw std::invalid_argument("retuning_interval: horizon");

  if (worst_error_at(inputs, drift_factor(nu, 1.0)) > error_budget)
    return 0.0;
  if (worst_error_at(inputs, drift_factor(nu, horizon)) <= error_budget)
    return horizon;

  // Bisection in log-time.
  double lo = 0.0;                  // log10(1 s)
  double hi = std::log10(horizon);
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double err =
        worst_error_at(inputs, drift_factor(nu, std::pow(10.0, mid)));
    if (err <= error_budget)
      lo = mid;
    else
      hi = mid;
  }
  return std::pow(10.0, lo);
}

}  // namespace mnsim::accuracy
