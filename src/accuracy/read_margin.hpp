// Sneak-path read-margin analysis for cross-point (0T1R) arrays.
//
// Without an access transistor, a memory-mode READ of one cell leaks
// through the unselected cells (sneak paths), shrinking the margin
// between reading a low-resistance and a high-resistance cell. 1T1R
// arrays avoid the problem at the Eq. 7 area cost — the trade-off behind
// MNSIM's Cell_Type knob. This module measures the margin circuit-level
// on the standard half-select biasing scheme (selected row at v_read,
// unselected rows/columns at v_read/2, selected column sensed) and
// provides the classical one-resistor closed-form estimate.
#pragma once

#include "tech/memristor.hpp"
#include "util/quantity.hpp"

namespace mnsim::accuracy {

struct ReadMarginInputs {
  int rows = 16;
  int cols = 16;
  tech::MemristorModel device;
  units::Ohms segment_resistance{0.022};
  units::Ohms sense_resistance{60.0};
  // Resistance state of all unselected cells (worst case: r_min).
  units::Ohms background_resistance{500.0};

  void validate() const;
};

struct ReadMarginResult {
  units::Volts v_read_lrs;   // sense voltage, selected cell at r_min
  units::Volts v_read_hrs;   // sense voltage, selected cell at r_max
  double margin = 0.0;       // (v_lrs - v_hrs) / v_lrs
  double sneak_current_share = 0.0;  // unselected current / total (LRS)
};

// Circuit-level: builds the half-selected array and solves both states.
ReadMarginResult read_margin_crosspoint(const ReadMarginInputs& inputs);

// 1T1R reference: access devices cut the sneak paths, leaving the ideal
// divider; the closed-form margin for comparison.
ReadMarginResult read_margin_isolated(const ReadMarginInputs& inputs);

}  // namespace mnsim::accuracy
