#include "accuracy/read_margin.hpp"

#include <stdexcept>

#include "spice/mna.hpp"
#include "util/fp.hpp"

namespace mnsim::accuracy {

using namespace mnsim::units;
using namespace mnsim::units::literals;

void ReadMarginInputs::validate() const {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("ReadMarginInputs: rows/cols");
  if (!(sense_resistance > 0_Ohm) || !(background_resistance > 0_Ohm))
    throw std::invalid_argument("ReadMarginInputs: resistances");
  device.validate();
}

namespace {

// Solves the half-selected cross-point array with the selected cell at
// `selected_resistance`; returns the sense voltage and the sneak share.
struct HalfSelectSolution {
  Volts v_sense;
  double sneak_share = 0.0;
};

HalfSelectSolution solve_half_select(const ReadMarginInputs& in,
                                     Ohms selected_resistance) {
  // Biasing: selected row at v_read, unselected rows and columns at
  // v_read/2 (so unselected cells see ~0 V), selected column sensed
  // through R_s. Wires are folded out: the sneak-path effect dominates
  // the margin at these array sizes.
  spice::Netlist nl(in.device);
  const Volts v = in.device.v_read;

  const spice::NodeId sel_row = nl.add_node();
  const spice::NodeId half_rail = nl.add_node();
  const spice::NodeId sel_col = nl.add_node();
  nl.add_source(sel_row, v.value(), "Vsel");
  nl.add_source(half_rail, (v / 2.0).value(), "Vhalf");

  // Selected cell.
  nl.add_memristor(sel_row, sel_col, selected_resistance.value(), "Xsel");
  // Sneak loads on the selected column: (rows - 1) unselected cells from
  // the half rail.
  for (int i = 1; i < in.rows; ++i)
    nl.add_memristor(half_rail, sel_col, in.background_resistance.value());
  // Cells on the selected row into unselected (half-biased) columns see a
  // fixed v/2 and only load the driver, not the sense node — they do not
  // change v_sense, so they are omitted from the reduced network.
  nl.add_resistor(sel_col, spice::kGround, in.sense_resistance.value(),
                  "Rs");

  const auto dc = spice::solve_dc(nl);
  HalfSelectSolution sol;
  sol.v_sense = Volts{dc.voltage(sel_col)};

  const double i_selected =
      spice::memristor_current(nl, nl.memristors().front(), dc);
  double i_total = i_selected;
  for (std::size_t k = 1; k < nl.memristors().size(); ++k)
    i_total += spice::memristor_current(nl, nl.memristors()[k], dc);
  sol.sneak_share =
      !util::exactly_zero(i_total) ? 1.0 - i_selected / i_total : 0.0;
  return sol;
}

}  // namespace

ReadMarginResult read_margin_crosspoint(const ReadMarginInputs& in) {
  in.validate();
  ReadMarginResult r;
  const auto lrs = solve_half_select(in, in.device.r_min);
  const auto hrs = solve_half_select(in, in.device.r_max);
  r.v_read_lrs = lrs.v_sense;
  r.v_read_hrs = hrs.v_sense;
  r.margin = lrs.v_sense > 0_V
                 ? (lrs.v_sense - hrs.v_sense) / lrs.v_sense
                 : 0.0;
  r.sneak_current_share = lrs.sneak_share;
  return r;
}

ReadMarginResult read_margin_isolated(const ReadMarginInputs& in) {
  in.validate();
  // Access transistors cut every sneak path: the pure divider.
  auto divider = [&](Ohms r_cell) {
    return in.device.v_read *
           (in.sense_resistance / (r_cell + in.sense_resistance));
  };
  ReadMarginResult r;
  r.v_read_lrs = divider(in.device.r_min);
  r.v_read_hrs = divider(in.device.r_max);
  r.margin = (r.v_read_lrs - r.v_read_hrs) / r.v_read_lrs;
  r.sneak_current_share = 0.0;
  return r;
}

}  // namespace mnsim::accuracy
