// Device-variation analysis (paper Sec. VI-D, Eq. 16).
//
// The closed form bounds the output error when every cell's resistance
// deviates by up to +/- sigma; this module cross-checks the bound by
// Monte-Carlo: per-cell resistances drawn uniformly from
// [(1-sigma) R, (1+sigma) R], the full crossbar solved circuit-level, and
// each trial scored as the worst relative error over ALL columns against
// the variation-free ideal (variation is i.i.d. per cell, so any column
// can be the worst one — not just the far column the wire analysis
// singles out).
#pragma once

#include <cstdint>
#include <vector>

#include "accuracy/voltage_error.hpp"

namespace mnsim::accuracy {

struct VariationMcOptions {
  int trials = 50;
  std::uint32_t seed = 7;
  // true: cells at r_min (the paper's worst case); false: harmonic mean.
  bool worst_case_cells = true;
  // Worker threads for the trial sweep: 1 = serial, 0 = hardware
  // concurrency. Each trial draws from its own counter-derived RNG
  // stream, so the results are bit-identical for every thread count.
  int threads = 1;
};

struct VariationMcResult {
  double mean_error = 0.0;        // mean per-trial worst-column |error|
  double max_error = 0.0;         // worst trial
  double closed_form_bound = 0.0; // Eq. 16 worst case
  std::vector<double> samples;    // per-trial worst-column |error|
  std::uint32_t seed = 0;         // RNG seed the trials used (echoed)
  // Sweep-acceleration bookkeeping (docs/PERFORMANCE.md).
  long cache_hits = 0;            // solves served by the cached topology
  long warm_starts = 0;           // solves warm-started from the base case
  int threads = 1;                // worker threads actually used
};

// Throws std::invalid_argument when sigma is zero (nothing to sample) or
// options are degenerate. Cost: one circuit-level solve per trial — keep
// rows/cols modest (<= 48) for interactive use.
VariationMcResult variation_monte_carlo(const CrossbarErrorInputs& inputs,
                                        const VariationMcOptions& options);

}  // namespace mnsim::accuracy
