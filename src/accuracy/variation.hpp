// Device-variation analysis (paper Sec. VI-D, Eq. 16).
//
// The closed form bounds the output error when every cell's resistance
// deviates by up to +/- sigma; this module cross-checks the bound by
// Monte-Carlo: per-cell resistances drawn uniformly from
// [(1-sigma) R, (1+sigma) R], the full crossbar solved circuit-level, and
// the far-column error measured against the variation-free ideal.
#pragma once

#include <cstdint>
#include <vector>

#include "accuracy/voltage_error.hpp"

namespace mnsim::accuracy {

struct VariationMcOptions {
  int trials = 50;
  std::uint32_t seed = 7;
  // true: cells at r_min (the paper's worst case); false: harmonic mean.
  bool worst_case_cells = true;
};

struct VariationMcResult {
  double mean_error = 0.0;        // mean |relative far-column error|
  double max_error = 0.0;         // worst trial
  double closed_form_bound = 0.0; // Eq. 16 worst case
  std::vector<double> samples;    // per-trial |error|
  std::uint32_t seed = 0;         // RNG seed the trials used (echoed)
};

// Throws std::invalid_argument when sigma is zero (nothing to sample) or
// options are degenerate. Cost: one circuit-level solve per trial — keep
// rows/cols modest (<= 48) for interactive use.
VariationMcResult variation_monte_carlo(const CrossbarErrorInputs& inputs,
                                        const VariationMcOptions& options);

}  // namespace mnsim::accuracy
