// Behavior-level computing-accuracy model, digital part
// (paper Sec. VI-C, Eq. 12-15).
//
// The analog output is linearly quantized into k levels by the read
// circuits. An analog deviation rate eps shifts values across quantization
// boundaries; the worst case sits just below the top boundary (Eq. 12-13)
// and the average case sums the per-level deviations (Eq. 14). For
// multi-layer networks the input fluctuation of the previous layer
// compounds with the current layer's crossbar error (Eq. 15).
#pragma once

#include <vector>

namespace mnsim::accuracy {

// Eq. 12: floor((k - 1.5) * eps + 0.5).
long max_digital_deviation(int k, double eps);

// Eq. 13: max deviation normalized by the full scale k - 1.
double max_error_rate(int k, double eps);

// Eq. 14: mean over levels i of floor(i * eps + 0.5).
double avg_digital_deviation(int k, double eps);

// Eq. 14 normalized by the full scale k - 1.
double avg_error_rate(int k, double eps);

// Eq. 15: worst-case compounding of the previous layer's digital error
// rate with this layer's analog error rate:
//   (1 + delta_prev)(1 + eps_layer) - 1.
double propagate_error(double delta_prev, double eps_layer);

// Chains propagate_error across a whole network: returns the accumulated
// digital error rate after each layer (the last entry is the accelerator
// output error the case studies report).
std::vector<double> propagate_layers(const std::vector<double>& layer_eps);

}  // namespace mnsim::accuracy
