// Behavior-level computing-accuracy model, analog part
// (paper Sec. VI-A/B/C/D, Eq. 9-11 and Eq. 16).
//
// Three approximations turn the nonlinear Kirchhoff system into a closed
// form the simulator can evaluate in microseconds:
//   1. decouple the nonlinear V-I law: solve the linear operating point,
//      then re-evaluate each cell's chord resistance R_act at its
//      operating voltage (a one-dimensional fixed point, iterated here),
//   2. drop wire capacitance/inductance: the crossbar becomes a resistor
//      network, and the worst-case column collapses to Eq. 10,
//   3. evaluate only the average and worst cases instead of per-matrix
//      results.
//
// The relative output-voltage error combines an interconnect term (the
// shared-current effective wire resistance, which grows ~quadratically
// with crossbar size — see tech::effective_wire_segments; the coefficient
// is fitted against the circuit-level solver exactly as the paper fits
// Eq. 11 against SPICE in Fig. 5) and a nonlinearity term (R_act - R_idl,
// which grows as the crossbar shrinks because the column parallel
// resistance — and with it the cell operating voltage — rises). Together
// they reproduce the paper's U-shaped error-vs-size curve (Table V).
// Device variation enters as (1 +/- sigma) * R_act (Eq. 16).
#pragma once

#include "tech/interconnect.hpp"
#include "tech/memristor.hpp"
#include "util/quantity.hpp"

namespace mnsim::accuracy {

struct CrossbarErrorInputs {
  int rows = 128;   // M
  int cols = 128;   // N
  tech::MemristorModel device;
  units::Ohms segment_resistance{0.022};  // r
  units::Ohms sense_resistance{60.0};     // R_s
  double wire_alpha = tech::kSharedCurrentAlpha;  // fitted (Fig. 5)

  void validate() const;
};

struct VoltageError {
  // Relative output-voltage error bound for the worst case (every cell at
  // r_min, farthest column, variation pushed in the worsening direction;
  // the interconnect and nonlinearity deviations push in opposite
  // directions, so the worst-case bound is the sum of magnitudes) and the
  // average case (harmonic-mean cells, mean wire distance, no variation).
  double worst = 0.0;
  double average = 0.0;

  // Diagnostics: the two signed contributions at the worst case.
  double interconnect_term = 0.0;  // from the effective wire resistance
  double nonlinear_term = 0.0;     // from R_act - R_idl (negative: the
                                   // sinh law conducts more than linear)
  units::Volts cell_operating_voltage;  // worst-case V across a cell
};

// Evaluates the closed-form model. The fixed point between the cell
// operating voltage and R_act converges in a few iterations (the coupling
// is weak); 8 iterations are used.
VoltageError estimate_voltage_error(const CrossbarErrorInputs& in);

// Signed relative output-voltage error for a given uniform cell state and
// wire distance in segments (the Eq. 11 kernel); exposed for the Fig. 5
// fit and for tests. `sigma_direction` is -1, 0, or +1 (Eq. 16).
double relative_output_error(const CrossbarErrorInputs& in,
                             units::Ohms cell_state_resistance,
                             double wire_segments, int sigma_direction);

// The same kernel with linear cells (no sinh correction): the pure
// interconnect term, used by the Fig. 5 fit where the wire coefficient is
// calibrated in isolation.
double relative_output_error_linear(const CrossbarErrorInputs& in,
                                    units::Ohms cell_state_resistance,
                                    double wire_segments);

// Kernel with an arbitrary multiplicative deviation on the programmed
// state: the ideal output is evaluated at `cell_state_resistance`, the
// actual at `state_factor * R_act` (plus wires and the sinh correction).
// `state_factor = 1 +/- sigma` reproduces Eq. 16; retention drift passes
// its unbounded (t/t0)^nu factor.
double relative_output_error_scaled(const CrossbarErrorInputs& in,
                                    units::Ohms cell_state_resistance,
                                    double wire_segments,
                                    double state_factor);

}  // namespace mnsim::accuracy
