#include "accuracy/variation.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "spice/crossbar_netlist.hpp"
#include "util/parallel.hpp"

namespace mnsim::accuracy {

using mnsim::units::Ohms;

VariationMcResult variation_monte_carlo(const CrossbarErrorInputs& in,
                                        const VariationMcOptions& opt) {
  in.validate();
  if (!(in.device.sigma > 0))
    throw std::invalid_argument("variation_monte_carlo: sigma must be > 0");
  if (opt.trials <= 0)
    throw std::invalid_argument("variation_monte_carlo: trials");

  const Ohms base = opt.worst_case_cells
                        ? in.device.r_min
                        : in.device.harmonic_mean_resistance();

  auto spec = spice::CrossbarSpec::uniform(
      in.rows, in.cols, in.device, in.segment_resistance.value(),
      in.sense_resistance.value(), base.value());
  // Variation-free reference, per column: variation is i.i.d. per cell,
  // so the worst deviation can land in any column — scoring only the far
  // column (the wire analysis' worst case) under-reports the error.
  const std::vector<double> v_ideal = spice::ideal_column_outputs(spec);

  VariationMcResult result;
  result.seed = opt.seed;
  // Closed form (Eq. 16): the worse of the two deviation directions on
  // top of the wire + nonlinearity error.
  const double w =
      tech::effective_wire_segments(in.rows, in.cols, in.wire_alpha);
  result.closed_form_bound =
      std::max(std::fabs(relative_output_error(in, base, w, +1)),
               std::fabs(relative_output_error(in, base, w, -1)));

  // Solve the unperturbed spec once: its operating point is the fixed
  // warm-start reference every trial seeds from (never the previous
  // trial, so trial results do not depend on work scheduling).
  const std::vector<double> warm_start =
      spice::solve_crossbar(spec).dc.node_voltages;

  // Pre-generate every trial's cell map from its own RNG stream derived
  // from (seed, trial) — the draw sequence depends only on the trial
  // index — then hand the whole sweep to the batched solver, which
  // builds the netlist, vets the topology and primes the CSR pattern
  // once for all trials (spice::solve_dc_batch).
  const auto trials = static_cast<std::size_t>(opt.trials);
  std::vector<spice::CrossbarBatchEntry> entries(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    std::mt19937 rng(util::derive_stream_seed(opt.seed, trial));
    std::uniform_real_distribution<double> dev(1.0 - in.device.sigma,
                                               1.0 + in.device.sigma);
    auto cells = spec.cell_resistance;
    for (auto& row : cells)
      for (double& r : row) r = (base * dev(rng)).value();
    entries[trial].cell_resistance = std::move(cells);
  }

  result.threads = util::resolve_thread_count(opt.threads);
  const auto sols =
      spice::solve_crossbar_batch(spec, entries, {}, opt.threads, warm_start);

  result.samples.resize(trials, 0.0);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    double err = 0.0;
    for (std::size_t j = 0; j < v_ideal.size(); ++j)
      err = std::max(err,
                     std::fabs((v_ideal[j] -
                                sols[trial].column_output_voltage[j]) /
                               v_ideal[j]));
    result.samples[trial] = err;
    result.cache_hits += sols[trial].diagnostics.cache_hits;
    result.warm_starts += sols[trial].diagnostics.warm_starts;
  }

  for (double err : result.samples) {
    result.mean_error += err;
    result.max_error = std::max(result.max_error, err);
  }
  result.mean_error /= opt.trials;
  return result;
}

}  // namespace mnsim::accuracy
