#include "accuracy/variation.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "spice/crossbar_netlist.hpp"
#include "util/parallel.hpp"

namespace mnsim::accuracy {

using mnsim::units::Ohms;

VariationMcResult variation_monte_carlo(const CrossbarErrorInputs& in,
                                        const VariationMcOptions& opt) {
  in.validate();
  if (!(in.device.sigma > 0))
    throw std::invalid_argument("variation_monte_carlo: sigma must be > 0");
  if (opt.trials <= 0)
    throw std::invalid_argument("variation_monte_carlo: trials");

  const Ohms base = opt.worst_case_cells
                        ? in.device.r_min
                        : in.device.harmonic_mean_resistance();

  auto spec = spice::CrossbarSpec::uniform(
      in.rows, in.cols, in.device, in.segment_resistance.value(),
      in.sense_resistance.value(), base.value());
  // Variation-free reference, per column: variation is i.i.d. per cell,
  // so the worst deviation can land in any column — scoring only the far
  // column (the wire analysis' worst case) under-reports the error.
  const std::vector<double> v_ideal = spice::ideal_column_outputs(spec);

  VariationMcResult result;
  result.seed = opt.seed;
  // Closed form (Eq. 16): the worse of the two deviation directions on
  // top of the wire + nonlinearity error.
  const double w =
      tech::effective_wire_segments(in.rows, in.cols, in.wire_alpha);
  result.closed_form_bound =
      std::max(std::fabs(relative_output_error(in, base, w, +1)),
               std::fabs(relative_output_error(in, base, w, -1)));

  // Prime a master solve cache on the unperturbed spec: its topology
  // pattern and operating point seed every worker's cache, so each trial
  // refills the CSR pattern and warm-starts CG from the base solution.
  // The warm start is a fixed reference (never the previous trial), so
  // trial results do not depend on work scheduling.
  spice::CrossbarSolveCache master;
  {
    const auto base_sol = spice::solve_crossbar(spec, {}, &master);
    master.mna.warm_start_voltages = base_sol.dc.node_voltages;
    master.mna.cache_hits = 0;
    master.mna.warm_starts = 0;
  }

  util::ThreadPool pool(opt.threads);
  result.threads = static_cast<int>(pool.worker_count());
  std::vector<spice::CrossbarSolveCache> caches(pool.worker_count(), master);
  std::vector<spice::CrossbarSpec> specs(pool.worker_count(), spec);

  result.samples = util::parallel_map(
      pool, static_cast<std::size_t>(opt.trials),
      [&](std::size_t trial, std::size_t worker) {
        // Per-trial RNG stream derived from (seed, trial): the draw
        // sequence depends only on the trial index, never on which
        // worker runs it.
        std::mt19937 rng(util::derive_stream_seed(opt.seed, trial));
        std::uniform_real_distribution<double> dev(1.0 - in.device.sigma,
                                                   1.0 + in.device.sigma);
        auto& trial_spec = specs[worker];
        for (auto& row : trial_spec.cell_resistance)
          for (double& r : row) r = (base * dev(rng)).value();
        const auto sol =
            spice::solve_crossbar(trial_spec, {}, &caches[worker]);
        double err = 0.0;
        for (std::size_t j = 0; j < v_ideal.size(); ++j)
          err = std::max(err, std::fabs((v_ideal[j] -
                                         sol.column_output_voltage[j]) /
                                        v_ideal[j]));
        return err;
      });

  for (double err : result.samples) {
    result.mean_error += err;
    result.max_error = std::max(result.max_error, err);
  }
  result.mean_error /= opt.trials;
  for (const auto& c : caches) {
    result.cache_hits += c.mna.cache_hits;
    result.warm_starts += c.mna.warm_starts;
  }
  return result;
}

}  // namespace mnsim::accuracy
