#include "accuracy/variation.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "spice/crossbar_netlist.hpp"

namespace mnsim::accuracy {

VariationMcResult variation_monte_carlo(const CrossbarErrorInputs& in,
                                        const VariationMcOptions& opt) {
  in.validate();
  if (!(in.device.sigma > 0))
    throw std::invalid_argument("variation_monte_carlo: sigma must be > 0");
  if (opt.trials <= 0)
    throw std::invalid_argument("variation_monte_carlo: trials");

  const double base = opt.worst_case_cells
                          ? in.device.r_min
                          : in.device.harmonic_mean_resistance();

  auto spec = spice::CrossbarSpec::uniform(
      in.rows, in.cols, in.device, in.segment_resistance,
      in.sense_resistance, base);
  const double v_idl = spice::ideal_column_outputs(spec).back();

  VariationMcResult result;
  result.seed = opt.seed;
  // Closed form (Eq. 16): the worse of the two deviation directions on
  // top of the wire + nonlinearity error.
  const double w =
      tech::effective_wire_segments(in.rows, in.cols, in.wire_alpha);
  result.closed_form_bound =
      std::max(std::fabs(relative_output_error(in, base, w, +1)),
               std::fabs(relative_output_error(in, base, w, -1)));

  std::mt19937 rng(opt.seed);
  std::uniform_real_distribution<double> dev(1.0 - in.device.sigma,
                                             1.0 + in.device.sigma);
  result.samples.reserve(static_cast<std::size_t>(opt.trials));
  for (int t = 0; t < opt.trials; ++t) {
    for (auto& row : spec.cell_resistance)
      for (double& r : row) r = base * dev(rng);
    const auto sol = spice::solve_crossbar(spec);
    const double err =
        std::fabs((v_idl - sol.column_output_voltage.back()) / v_idl);
    result.samples.push_back(err);
    result.mean_error += err;
    result.max_error = std::max(result.max_error, err);
  }
  result.mean_error /= opt.trials;
  return result;
}

}  // namespace mnsim::accuracy
