#include "accuracy/fit_model.hpp"

#include <cmath>
#include <stdexcept>

#include "spice/crossbar_netlist.hpp"
#include "tech/interconnect.hpp"

namespace mnsim::accuracy {

using namespace mnsim::units;

namespace {

// Worst-case circuit-level error rate: all cells at r_min, interconnect
// error of the farthest column against the ideal (wire-free) output,
// with linear cells so the wire coefficient is isolated from the
// nonlinearity term (the model treats the two additively).
double spice_worst_interconnect_error(int size, Ohms segment_resistance,
                                      const tech::MemristorModel& device,
                                      Ohms sense_resistance) {
  auto spec = spice::CrossbarSpec::uniform(
      size, size, device, segment_resistance.value(), sense_resistance.value(),
      device.r_min.value());
  spec.linear_memristors = true;
  const auto ideal = spice::ideal_column_outputs(spec);
  const auto sol = spice::solve_crossbar(spec);
  const double v_idl = ideal.back();
  const double v_act = sol.column_output_voltage.back();
  return std::fabs((v_idl - v_act) / v_idl);
}

}  // namespace

AccuracyFit calibrate_against_spice(
    const std::vector<int>& sizes, const std::vector<int>& interconnect_nodes,
    const tech::MemristorModel& device, Ohms sense_resistance) {
  if (sizes.empty() || interconnect_nodes.empty())
    throw std::invalid_argument("calibrate_against_spice: empty sweep");

  struct Raw {
    int size;
    int node;
    Ohms r;
    double eps_spice;
  };
  std::vector<Raw> raw;
  for (int node : interconnect_nodes) {
    const Ohms r = tech::interconnect_tech(node).segment_resistance;
    for (int size : sizes) {
      raw.push_back({size, node,  r,
                     spice_worst_interconnect_error(size, r, device,
                                                    sense_resistance)});
    }
  }

  // Each sample implies an effective segment count w through the Eq. 11
  // divider eps = w r / (R + w r + Rs M)  =>  w = eps (R + Rs M)/(r (1-eps)).
  // Fit w ~ alpha * (M^2 + N^2)/2 by least squares through the origin.
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : raw) {
    const double basis = tech::effective_wire_segments(s.size, s.size, 1.0);
    if (s.eps_spice >= 1.0) continue;  // saturated sample, uninformative
    const double w_implied = s.eps_spice *
                             (device.r_min + sense_resistance * s.size) /
                             (s.r * (1.0 - s.eps_spice));
    num += basis * w_implied;
    den += basis * basis;
  }
  if (den <= 0)
    throw std::runtime_error("calibrate_against_spice: degenerate fit");

  AccuracyFit fit;
  fit.alpha = num / den;

  double ss = 0.0;
  for (const auto& s : raw) {
    FitSample out;
    out.size = s.size;
    out.interconnect_node = s.node;
    out.spice_error = s.eps_spice;

    CrossbarErrorInputs in;
    in.rows = s.size;
    in.cols = s.size;
    in.device = device;
    in.segment_resistance = s.r;
    in.sense_resistance = sense_resistance;
    in.wire_alpha = fit.alpha;
    // Interconnect-only model error (linear cells), matching the sample.
    const double w = tech::effective_wire_segments(s.size, s.size, fit.alpha);
    out.model_error =
        std::fabs(relative_output_error_linear(in, device.r_min, w));

    const double resid = out.model_error - out.spice_error;
    ss += resid * resid;
    fit.max_abs = std::max(fit.max_abs, std::fabs(resid));
    fit.samples.push_back(out);
  }
  fit.rmse = std::sqrt(ss / static_cast<double>(fit.samples.size()));
  return fit;
}

}  // namespace mnsim::accuracy
