// Conductance retention drift.
//
// Programmed memristor states drift over time — most prominently in PCM,
// whose amorphous phase relaxes as R(t) = R(t0) * (t/t0)^nu (the
// classical drift law), and far more weakly in RRAM; STT-MRAM holds
// binary states without drift. Drift inflates every cell's resistance,
// which lowers the column outputs exactly like a one-sided device
// variation, so it folds into the Eq. 16 machinery: the drifted state is
// an extra multiplicative factor on R_act.
//
// The practical question for an inference accelerator that writes
// weights once (Sec. II-B.1) is the *retuning interval*: how long until
// drift alone pushes the accelerator's worst-case error past the design
// constraint and the arrays must be reprogrammed.
#pragma once

#include <vector>

#include "accuracy/voltage_error.hpp"

namespace mnsim::accuracy {

// Drift exponent nu by device kind (0 disables drift).
double drift_exponent(tech::DeviceKind kind);

// Resistance multiplier after `elapsed` seconds for a state programmed at
// `reference_time` (default 1 s, the conventional t0). Returns 1 for
// elapsed <= reference_time.
double drift_factor(double nu, double elapsed, double reference_time = 1.0);

struct RetentionPoint {
  double elapsed = 0.0;       // [s]
  double drift = 1.0;         // resistance multiplier
  double worst_error = 0.0;   // crossbar worst-case error at this age
};

// Worst-case crossbar error as a function of age: evaluates the Eq. 11
// kernel with every cell's resistance inflated by the drift factor.
std::vector<RetentionPoint> retention_sweep(
    const CrossbarErrorInputs& inputs, double nu,
    const std::vector<double>& ages);

// The largest age (searched over [1 s, horizon]) at which the worst-case
// error still meets `error_budget`; returns `horizon` when drift never
// violates it, and 0 when the budget is violated even fresh.
double retuning_interval(const CrossbarErrorInputs& inputs, double nu,
                         double error_budget, double horizon = 1e9);

}  // namespace mnsim::accuracy
