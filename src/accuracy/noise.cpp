#include "accuracy/noise.hpp"

#include <cmath>
#include <stdexcept>

namespace mnsim::accuracy {

using namespace mnsim::units;
using namespace mnsim::units::literals;

namespace {
constexpr double kBoltzmann = 1.380649e-23;  // [J/K]

// Standard normal upper-tail probability via the complementary error
// function: P(X > x).
double gaussian_tail(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }
}  // namespace

void ReadNoiseInputs::validate() const {
  if (rows <= 0) throw std::invalid_argument("ReadNoiseInputs: rows");
  if (!(sense_resistance > 0_Ohm) || !(bandwidth > 0_Hz) ||
      !(temperature > 0))
    throw std::invalid_argument("ReadNoiseInputs: parameters");
  if (output_bits < 1 || output_bits > 16)
    throw std::invalid_argument("ReadNoiseInputs: output bits");
  device.validate();
}

ReadNoiseResult estimate_read_noise(const ReadNoiseInputs& in) {
  in.validate();
  ReadNoiseResult r;

  // The noise-relevant resistance at the sense node: the column parallel
  // resistance (harmonic-mean cells) in parallel with R_s.
  const Ohms r_par = in.device.harmonic_mean_resistance() / in.rows;
  const Ohms r_eff =
      r_par * (in.sense_resistance / (r_par + in.sense_resistance));
  // v_n = sqrt(4 k T R B); the sqrt leaves the typed algebra, so the
  // R * B product crosses into raw doubles here.
  r.thermal_noise_rms = std::sqrt(4.0 * kBoltzmann * in.temperature *
                                  r_eff.value() * in.bandwidth.value());

  // Full scale at the sense node is the maximum column output.
  const Volts full_scale = in.device.v_read * (in.sense_resistance /
                                               (r_par + in.sense_resistance));
  r.lsb = (full_scale / ((1 << in.output_bits) - 1)).value();
  r.quantization_noise_rms = r.lsb / std::sqrt(12.0);
  r.total_noise_rms =
      std::hypot(r.thermal_noise_rms, r.quantization_noise_rms);
  r.snr_db = 20.0 * std::log10(full_scale.value() / r.total_noise_rms);
  r.code_flip_probability =
      r.thermal_noise_rms > 0
          ? 2.0 * gaussian_tail(0.5 * r.lsb / r.thermal_noise_rms)
          : 0.0;
  return r;
}

double expected_quantization_error_lsb() {
  // Uniform input over one step: E|e| = LSB/4.
  return 0.25;
}

}  // namespace mnsim::accuracy
