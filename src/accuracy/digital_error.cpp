#include "accuracy/digital_error.hpp"

#include <cmath>
#include <stdexcept>

namespace mnsim::accuracy {

namespace {
void check_k(int k) {
  if (k < 2) throw std::invalid_argument("accuracy: k must be >= 2 levels");
}
}  // namespace

long max_digital_deviation(int k, double eps) {
  check_k(k);
  if (eps < 0) eps = -eps;
  return static_cast<long>(std::floor((k - 1.5) * eps + 0.5));
}

double max_error_rate(int k, double eps) {
  return static_cast<double>(max_digital_deviation(k, eps)) / (k - 1);
}

double avg_digital_deviation(int k, double eps) {
  check_k(k);
  if (eps < 0) eps = -eps;
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += std::floor(i * eps + 0.5);
  return sum / k;
}

double avg_error_rate(int k, double eps) {
  return avg_digital_deviation(k, eps) / (k - 1);
}

double propagate_error(double delta_prev, double eps_layer) {
  if (delta_prev < 0 || eps_layer < 0)
    throw std::invalid_argument("propagate_error: rates must be >= 0");
  return (1.0 + delta_prev) * (1.0 + eps_layer) - 1.0;
}

std::vector<double> propagate_layers(const std::vector<double>& layer_eps) {
  std::vector<double> out;
  out.reserve(layer_eps.size());
  double delta = 0.0;
  for (double eps : layer_eps) {
    delta = propagate_error(delta, eps);
    out.push_back(delta);
  }
  return out;
}

}  // namespace mnsim::accuracy
