#include "accuracy/voltage_error.hpp"

#include <cmath>
#include <stdexcept>

namespace mnsim::accuracy {

using namespace mnsim::units;
using namespace mnsim::units::literals;

void CrossbarErrorInputs::validate() const {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("CrossbarErrorInputs: rows/cols");
  if (!(segment_resistance >= 0_Ohm))
    throw std::invalid_argument("CrossbarErrorInputs: segment resistance");
  if (!(sense_resistance > 0_Ohm))
    throw std::invalid_argument("CrossbarErrorInputs: sense resistance");
  device.validate();
}

namespace {

// Output voltage of a column whose cells all sit at `r_cell`, with
// `wire_segments * r` of wire folded into the column (Eq. 9-10).
Volts column_output(const CrossbarErrorInputs& in, Ohms r_cell,
                    double wire_segments) {
  const Ohms r_par =
      (r_cell + wire_segments * in.segment_resistance) / in.rows;
  return in.device.v_read *
         (in.sense_resistance / (r_par + in.sense_resistance));
}

}  // namespace

double relative_output_error_scaled(const CrossbarErrorInputs& in,
                                    Ohms cell_state_resistance,
                                    double wire_segments,
                                    double state_factor) {
  in.validate();
  if (!(state_factor > 0))
    throw std::invalid_argument(
        "relative_output_error_scaled: state factor must be positive");
  const Volts v_in = in.device.v_read;

  // Ideal: linear cells at the programmed state, no wires.
  const Volts v_idl = column_output(in, cell_state_resistance, 0.0);

  // Actual: iterate the (weak) fixed point between the cell operating
  // voltage and the chord resistance R_act(V_cell). The cell sees its
  // share of the series path (cell / wires / sense resistor).
  Ohms r_act = cell_state_resistance * state_factor;
  for (int it = 0; it < 8; ++it) {
    const Volts v_cell =
        v_in * (r_act /
                (r_act + wire_segments * in.segment_resistance +
                 in.sense_resistance * in.rows));
    r_act = state_factor *
            in.device.actual_resistance(cell_state_resistance, v_cell);
  }
  const Volts v_out = column_output(in, r_act, wire_segments);
  return (v_idl - v_out) / v_idl;
}

double relative_output_error(const CrossbarErrorInputs& in,
                             Ohms cell_state_resistance,
                             double wire_segments, int sigma_direction) {
  const double factor =
      sigma_direction == 0
          ? 1.0
          : 1.0 + (sigma_direction > 0 ? in.device.sigma : -in.device.sigma);
  return relative_output_error_scaled(in, cell_state_resistance,
                                      wire_segments, factor);
}

double relative_output_error_linear(const CrossbarErrorInputs& in,
                                    Ohms cell_state_resistance,
                                    double wire_segments) {
  in.validate();
  const Volts v_idl = column_output(in, cell_state_resistance, 0.0);
  const Volts v_act = column_output(in, cell_state_resistance, wire_segments);
  return (v_idl - v_act) / v_idl;
}

VoltageError estimate_voltage_error(const CrossbarErrorInputs& in) {
  in.validate();
  VoltageError e;

  // Worst case: every cell at r_min; the farthest column sees the full
  // shared-current effective wire resistance (Eq. 10 with the fitted
  // quadratic segment count). Variation, if any, pushed towards larger
  // resistance (lower output).
  const double worst_segments =
      tech::effective_wire_segments(in.rows, in.cols, in.wire_alpha);
  const int worst_sigma = in.device.sigma > 0 ? +1 : 0;
  const double signed_worst = relative_output_error(
      in, in.device.r_min, worst_segments, worst_sigma);

  // Split diagnostics: interconnect-only (linear cells) vs the remainder.
  {
    const Volts v_idl = column_output(in, in.device.r_min, 0.0);
    const Volts v_ic = column_output(in, in.device.r_min, worst_segments);
    e.interconnect_term = (v_idl - v_ic) / v_idl;
    e.nonlinear_term = signed_worst - e.interconnect_term;
    const Ohms r_par_act =
        (in.device.r_min + worst_segments * in.segment_resistance) / in.rows;
    e.cell_operating_voltage =
        in.device.v_read * (r_par_act / (r_par_act + in.sense_resistance));
  }
  // The two deviations have opposite signs (wires drop the output, the
  // sinh law lifts it); the worst single read can land on either side, so
  // the worst-case bound is the sum of magnitudes.
  e.worst = std::fabs(e.interconnect_term) + std::fabs(e.nonlinear_term);

  // Average case: harmonic-mean cell resistance (paper Sec. V-A), mean
  // wire distance of half the far column, no variation bias.
  e.average = std::fabs(relative_output_error(
      in, in.device.harmonic_mean_resistance(), 0.5 * worst_segments, 0));
  return e;
}

}  // namespace mnsim::accuracy
