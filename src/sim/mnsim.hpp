// MNSIM platform front end (paper Sec. IV, Fig. 3).
//
// The software flow: read the Table-I configuration, generate the module
// hierarchy for the target network, simulate bottom-up (unit -> bank ->
// accelerator), and report area / power / latency / computing accuracy.
// This header is the one most applications need; the lower-level headers
// expose every model individually for customization.
#pragma once

#include <string>

#include "arch/accelerator.hpp"
#include "arch/cycle_sim.hpp"
#include "nn/topologies.hpp"

namespace mnsim::sim {

// Loads an INI configuration file into an AcceleratorConfig (Table I keys;
// see arch::AcceleratorConfig::from_config).
arch::AcceleratorConfig load_config(const std::string& path);

// As above, additionally reporting keys the loader parsed but never read
// (the silent-typo class, MN-CFG-006) into `diagnostics` when non-null.
arch::AcceleratorConfig load_config(const std::string& path,
                                    check::DiagnosticList* diagnostics);

// The full simulation flow for a network under a configuration.
arch::AcceleratorReport simulate(const nn::Network& network,
                                 const arch::AcceleratorConfig& config);

// Human-readable report: accelerator totals followed by the per-bank
// breakdown (area/power/latency/error per computation bank).
std::string format_report(const nn::Network& network,
                          const arch::AcceleratorReport& report);

// Human-readable cycle-level report ([cycle] Enabled / `sim --cycle`):
// makespan and PE-occupancy totals followed by the per-bank stall
// decomposition and scratchpad/bus traffic.
std::string format_cycle_report(const arch::CycleSimResult& result);

}  // namespace mnsim::sim
