#include "sim/json_report.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mnsim::sim {

namespace {

std::string num(double v) {
  // Shortest round-trip-exact representation.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string report_to_json(const nn::Network& network,
                           const arch::AcceleratorReport& report) {
  return report_to_json(network, report, nullptr);
}

std::string report_to_json(const nn::Network& network,
                           const arch::AcceleratorReport& report,
                           const arch::CycleSimResult* cycles) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"network\": {\"name\": " << quote(network.name)
     << ", \"depth\": " << network.depth()
     << ", \"weights\": " << network.total_weights() << "},\n";
  os << "  \"totals\": {"
     << "\"area\": " << num(report.area)
     << ", \"power\": " << num(report.power)
     << ", \"leakage_power\": " << num(report.leakage_power)
     << ", \"energy_per_sample\": " << num(report.energy_per_sample)
     << ", \"sample_latency\": " << num(report.sample_latency)
     << ", \"pipeline_cycle\": " << num(report.pipeline_cycle)
     << ", \"max_error_rate\": " << num(report.max_error_rate)
     << ", \"avg_error_rate\": " << num(report.avg_error_rate)
     << ", \"relative_accuracy\": " << num(report.relative_accuracy)
     << ", \"total_units\": " << report.total_units
     << ", \"total_crossbars\": " << report.total_crossbars << "},\n";

  // Robustness blocks: what the solver actually did and which fault
  // model (with its exact seed) produced this report. Booleans are
  // emitted as 0/1 so parse_json_numbers round-trips every field.
  const auto& d = report.solver;
  os << "  \"solver_diagnostics\": {"
     << "\"newton_iterations\": " << d.newton_iterations
     << ", \"newton_residual\": " << num(d.newton_residual)
     << ", \"cg_iterations\": " << d.cg_iterations
     << ", \"cg_retries\": " << d.cg_retries
     << ", \"lu_fallbacks\": " << d.lu_fallbacks
     << ", \"damped_steps\": " << d.damped_steps
     << ", \"linear_residual\": " << num(d.linear_residual)
     << ", \"faults_injected\": " << d.faults_injected
     << ", \"cache_hits\": " << d.cache_hits
     << ", \"warm_starts\": " << d.warm_starts
     << ", \"schur_solves\": " << d.schur_solves
     << ", \"schur_iterations\": " << d.schur_iterations
     << ", \"schur_rejects\": " << d.schur_rejects
     << ", \"factor_reuses\": " << d.factor_reuses
     << ", \"condition_estimate\": " << num(d.condition_estimate)
     << ", \"threads\": " << d.threads
     << ", \"degraded\": " << (d.degraded() ? 1 : 0) << "},\n";
  const auto& f = report.fault_config;
  os << "  \"fault_model\": {"
     << "\"enabled\": " << (f.enabled() ? 1 : 0)
     << ", \"seed\": " << f.seed
     << ", \"stuck_at_zero_rate\": " << num(f.stuck_at_zero_rate)
     << ", \"stuck_at_one_rate\": " << num(f.stuck_at_one_rate)
     << ", \"broken_wordline_rate\": " << num(f.broken_wordline_rate)
     << ", \"broken_bitline_rate\": " << num(f.broken_bitline_rate)
     << ", \"retention_time\": " << num(f.retention_time)
     << ", \"circuit_check\": " << (f.circuit_check ? 1 : 0) << "},\n";

  // Pre-flight analyzer findings that rode along with the run (errors
  // would have thrown before a report existed). Same record layout as
  // `mnsim check --json`.
  os << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const auto& diag = report.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"code\": " << quote(diag.code)
       << ", \"severity\": "
       << quote(check::severity_name(diag.severity))
       << ", \"message\": " << quote(diag.message)
       << ", \"file\": " << quote(diag.file) << ", \"line\": " << diag.line
       << ", \"location\": " << quote(diag.location)
       << ", \"hint\": " << quote(diag.hint) << "}";
  }
  os << (report.diagnostics.empty() ? "" : "\n  ") << "],\n";

  auto item = [&](const char* name, const arch::BreakdownItem& it,
                  bool last = false) {
    os << "    " << quote(name) << ": {\"area\": " << num(it.area)
       << ", \"energy\": " << num(it.energy) << "}" << (last ? "\n" : ",\n");
  };
  os << "  \"breakdown\": {\n";
  item("crossbars", report.breakdown.crossbars);
  item("input_dacs", report.breakdown.input_dacs);
  item("read_circuits", report.breakdown.read_circuits);
  item("decoders", report.breakdown.decoders);
  item("digital", report.breakdown.digital);
  item("adder_trees", report.breakdown.adder_trees);
  item("neurons", report.breakdown.neurons);
  item("pooling", report.breakdown.pooling);
  item("buffers", report.breakdown.buffers);
  item("interfaces", report.breakdown.interfaces, true);
  os << "  },\n";

  os << "  \"banks\": [\n";
  for (std::size_t b = 0; b < report.banks.size(); ++b) {
    const auto& bank = report.banks[b];
    os << "    {\"units\": " << bank.mapping.unit_count
       << ", \"area\": " << num(bank.area)
       << ", \"energy_per_sample\": " << num(bank.energy_per_sample)
       << ", \"pass_latency\": " << num(bank.pass_latency)
       << ", \"iterations\": " << bank.iterations
       << ", \"epsilon_worst\": " << num(bank.epsilon_worst)
       << ", \"epsilon_average\": " << num(bank.epsilon_average) << "}"
       << (b + 1 < report.banks.size() ? "," : "") << "\n";
  }
  os << "  ]";

  // Cycle-level memory-hierarchy results ([cycle] Enabled). Enums are
  // emitted as their config spellings; booleans as 0/1 so
  // parse_json_numbers round-trips the numeric fields.
  if (cycles != nullptr) {
    const auto& c = *cycles;
    os << ",\n  \"cycle\": {\n"
       << "    \"dataflow\": " << quote(arch::dataflow_name(c.dataflow))
       << ", \"fill_policy\": " << quote(arch::fill_policy_name(c.fill_policy))
       << ", \"clock_hz\": " << num(c.clock_hz)
       << ", \"makespan_cycles\": " << c.makespan_cycles
       << ", \"makespan_seconds\": " << num(c.makespan_seconds)
       << ", \"total_tiles\": " << c.total_tiles
       << ", \"total_busy_cycles\": " << c.total_busy_cycles
       << ", \"total_stall_cycles\": " << c.total_stall_cycles
       << ", \"backing_traffic_bytes\": " << num(c.backing_traffic_bytes)
       << ", \"weight_image_bytes\": " << num(c.weight_image_bytes)
       << ", \"pe_scheduled_fraction\": " << num(c.pe_scheduled_fraction)
       << ", \"pe_active_fraction\": " << num(c.pe_active_fraction)
       << ", \"stall_fraction\": " << num(c.stall_fraction) << ",\n"
       << "    \"banks\": [\n";
    for (std::size_t b = 0; b < c.banks.size(); ++b) {
      const auto& bank = c.banks[b];
      os << "      {\"tiles\": " << bank.tiles
         << ", \"compute_cycles_per_tile\": " << bank.compute_cycles_per_tile
         << ", \"busy_cycles\": " << bank.busy_cycles
         << ", \"dependency_stall_cycles\": " << bank.dependency_stall_cycles
         << ", \"fill_stall_cycles\": " << bank.fill_stall_cycles
         << ", \"drain_stall_cycles\": " << bank.drain_stall_cycles
         << ", \"idle_cycles\": " << bank.idle_cycles
         << ", \"utilization\": " << num(bank.utilization)
         << ", \"ifmap_bytes\": " << num(bank.ifmap_bytes)
         << ", \"ofmap_bytes\": " << num(bank.ofmap_bytes)
         << ", \"filter_bytes\": " << num(bank.filter_bytes)
         << ", \"bus_busy_cycles\": " << bank.bus_busy_cycles
         << ", \"resident_ifmap\": " << (bank.resident_ifmap ? 1 : 0)
         << ", \"resident_ofmap\": " << (bank.resident_ofmap ? 1 : 0) << "}"
         << (b + 1 < c.banks.size() ? "," : "") << "\n";
    }
    os << "    ]\n  }";
  }

  // Process-wide observability counters ([trace] Metrics; the registry
  // aggregates across every solve of the run, a superset of the
  // per-report solver_diagnostics block above).
  const obs::Registry& reg = obs::Registry::global();
  if (reg.enabled() && !reg.empty())
    os << ",\n  \"metrics\": " << reg.to_json();
  os << "\n}\n";
  return os.str();
}

namespace {

class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  void parse(std::map<std::string, double>& out) {
    skip_ws();
    value("", out);
    skip_ws();
    if (pos_ != text_.size())
      throw std::runtime_error("json: trailing characters");
  }

 private:
  void value(const std::string& path, std::map<std::string, double>& out) {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("json: truncated");
    const char c = text_[pos_];
    if (c == '{') {
      object(path, out);
    } else if (c == '[') {
      array(path, out);
    } else if (c == '"') {
      (void)string();
    } else if (c == 't' || c == 'f' || c == 'n') {
      literal();
    } else {
      out[path] = number();
    }
  }

  void object(const std::string& path, std::map<std::string, double>& out) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      value(path.empty() ? key : path + "." + key, out);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void array(const std::string& path, std::map<std::string, double>& out) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    int index = 0;
    while (true) {
      value(path + "." + std::to_string(index++), out);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string string() {
    expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      s += text_[pos_++];
    }
    expect('"');
    return s;
  }

  double number() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) throw std::runtime_error("json: expected number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  void literal() {
    for (const char* word : {"true", "false", "null"}) {
      const std::size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return;
      }
    }
    throw std::runtime_error("json: bad literal");
  }

  char peek() const {
    if (pos_ >= text_.size()) throw std::runtime_error("json: truncated");
    return text_[pos_];
  }
  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      throw std::runtime_error(std::string("json: expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, double> parse_json_numbers(const std::string& json) {
  std::map<std::string, double> out;
  JsonScanner scanner(json);
  scanner.parse(out);
  return out;
}

}  // namespace mnsim::sim
