#include "sim/custom_module.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/network_check.hpp"
#include "circuit/adc.hpp"
#include "circuit/buffer.hpp"
#include "circuit/crossbar.hpp"
#include "circuit/dac.hpp"
#include "circuit/decoder.hpp"
#include "circuit/logic.hpp"
#include "circuit/neuron.hpp"
#include "tech/cmos_tech.hpp"
#include "util/units.hpp"

namespace mnsim::sim {

using namespace mnsim::units;

double CustomModule::task_energy() const {
  const double per_op = energy_per_op >= 0
                            ? energy_per_op
                            : ppa.dynamic_power * ppa.latency;
  return per_op * ops_per_task * count;
}

CustomModule& CustomAcceleratorSpec::add(std::string module_name,
                                         circuit::Ppa ppa, long count,
                                         double ops_per_task, bool critical) {
  CustomModule m;
  m.name = std::move(module_name);
  m.ppa = ppa;
  m.count = count;
  m.ops_per_task = ops_per_task;
  m.on_critical_path = critical;
  modules.push_back(std::move(m));
  return modules.back();
}

void CustomAcceleratorSpec::validate() const {
  // Thin wrapper over the semantic analyzer (check/network_check.hpp)
  // kept for API compatibility: the first MN-CUS-* error becomes the
  // historical std::invalid_argument.
  const check::DiagnosticList diags = check::check_custom_spec(*this);
  for (const auto& d : diags) {
    if (d.severity == check::Severity::kError)
      throw std::invalid_argument("CustomAcceleratorSpec: " + d.message +
                                  " [" + d.code + "]");
  }
}

CustomReport simulate_custom(const CustomAcceleratorSpec& spec) {
  spec.validate();
  CustomReport rep;
  double chain_latency = 0.0;
  for (const auto& m : spec.modules) {
    rep.area += m.ppa.area * m.count;
    rep.leakage_power += m.ppa.leakage_power * m.count;
    rep.energy_per_task += m.task_energy();
    if (m.on_critical_path) chain_latency += m.ppa.latency;
  }
  rep.latency = spec.pipeline_stages > 1
                    ? spec.pipeline_stages * spec.cycle_time *
                          spec.task_cycles
                    : chain_latency * spec.task_cycles;
  rep.energy_per_task += rep.leakage_power * rep.latency;
  rep.power = rep.latency > 0 ? rep.energy_per_task / rep.latency : 0.0;
  return rep;
}

CustomAcceleratorSpec build_prime_ff_subarray() {
  // PRIME (Sec. VII-E.1): 65 nm CMOS, RRAM, crossbar 256, 6-bit
  // fixed-point I/O, 8-bit signed weights on 4-bit cells -> four cells
  // per weight -> four crossbars; adders, sigmoid neurons and pooling
  // move inside the reconfigurable units.
  const auto cmos = tech::cmos_tech(65);
  auto device = tech::default_rram();
  device.level_bits = 4;

  CustomAcceleratorSpec spec;
  spec.name = "PRIME FF-subarray";

  circuit::CrossbarModel xbar;
  xbar.rows = 256;
  xbar.cols = 256;
  xbar.device = device;
  xbar.interconnect_node_nm = 65;
  spec.add("rram crossbar", xbar.compute_ppa(), 4, 1.0, true);

  circuit::DecoderModel dec{256, circuit::DecoderKind::kComputationOriented,
                            cmos};
  spec.add("wordline decoder", dec.ppa(), 4, 1.0, true);

  circuit::DacModel dac{6, cmos};
  spec.add("input DAC", dac.ppa(), 256, 1.0, true);

  // PRIME reads through fast flash-style 6-bit SAs, 16 per crossbar pair
  // -> 16 sequential column groups per 256-column readout.
  circuit::AdcModel sa{circuit::AdcKind::kFlash, 6, units::Hertz{50e6},
                       cmos};
  const double read_groups = 16.0;
  auto& adc = spec.add("6-bit SA", sa.ppa(), 2 * 16, read_groups, true);
  adc.ppa.latency *= read_groups;  // sequential groups on the path

  spec.add("column mux", circuit::mux_ppa(16, 1, cmos), 2 * 16, read_groups);
  spec.add("subtract/add units", circuit::subtractor_ppa(6, cmos), 32,
           read_groups, true);
  circuit::NeuronModel sigmoid{circuit::NeuronKind::kSigmoid, 6, cmos};
  spec.add("sigmoid units", sigmoid.ppa(), 32, 8.0, true);
  circuit::PoolingModel pool{2, 6, cmos};
  spec.add("pooling units", pool.ppa(), 8, 4.0);
  circuit::RegisterBankModel out{256, 6, cmos};
  spec.add("output latch", out.ppa(), 1, read_groups, true);
  return spec;
}

CustomAcceleratorSpec build_isaac_tile() {
  // ISAAC (Sec. VII-E.2): 32 nm CMOS, 96 128x128 crossbars per tile, a
  // 22-cycle inner pipeline at 100 ns, and the S&H / eDRAM / DAC / ADC
  // imported from the original publication's per-module figures (the
  // same substitution the paper performs).
  const auto cmos = tech::cmos_tech(32);
  auto device = tech::default_rram();
  device.level_bits = 2;  // ISAAC stores 2 bits per cell

  CustomAcceleratorSpec spec;
  spec.name = "ISAAC tile";
  spec.pipeline_stages = 22;
  spec.cycle_time = 100 * ns;
  spec.task_cycles = 1.0;

  // Every datapath module is active in each of the 22 inner-pipeline
  // cycles of a task, so per-task energy charges 22 activations of one
  // 100 ns cycle.
  circuit::CrossbarModel xbar;
  xbar.rows = 128;
  xbar.cols = 128;
  xbar.device = device;
  xbar.interconnect_node_nm = 32;
  circuit::Ppa xbar_ppa = xbar.compute_ppa();
  xbar_ppa.latency = spec.cycle_time;  // conducts for the full cycle
  spec.add("rram crossbar", xbar_ppa, 96, 22.0);

  // Imported modules (published figures): area, per-op energy.
  auto imported = [](double area_mm2, double power_w, double latency_s) {
    circuit::Ppa p;
    p.area = area_mm2 * mm2;
    p.dynamic_power = power_w;
    p.latency = latency_s;
    p.leakage_power = 0.05 * power_w;
    return p;
  };
  // 8-bit 1.28 GS/s SAR ADC (Kull, JSSC'13): 3.1 mW, ~0.0015 mm^2.
  spec.add("ADC (imported)", imported(0.0015, 3.1e-3, 100 * ns), 96, 22.0);
  // 1-bit DACs on every row (128 per crossbar), negligible each.
  spec.add("DAC array (imported)", imported(0.00025, 0.5e-3, 100 * ns), 96,
           22.0);
  // Sample-and-hold (O'Halloran, JSSC'04 class): 10 nW, tiny.
  spec.add("S&H (imported)", imported(0.00004, 1e-8, 100 * ns), 96, 22.0);
  // 64 KB eDRAM buffer + bus: 20.7 mW read power, 0.083 mm^2.
  spec.add("eDRAM buffer (imported)", imported(0.083, 20.7e-3, 100 * ns), 1,
           22.0);
  // Shift-and-add, sigmoid, output registers from MNSIM's own models.
  spec.add("shift&add", circuit::shifter_ppa(16, 8, cmos), 48, 22.0);
  circuit::NeuronModel sigmoid{circuit::NeuronKind::kSigmoid, 8, cmos};
  spec.add("sigmoid units", sigmoid.ppa(), 2, 22.0);
  circuit::RegisterBankModel out{2048, 8, cmos};
  spec.add("output register", out.ppa(), 1, 22.0);
  return spec;
}

}  // namespace mnsim::sim
