// Machine-readable report output.
//
// Serializes an AcceleratorReport (with its network context) to JSON so
// downstream tooling — plotting scripts, regression dashboards, design
// databases — can consume MNSIM results without parsing the ASCII
// tables. The writer emits a stable key layout; a minimal reader is
// provided for round-trip testing and for loading archived results.
#pragma once

#include <map>
#include <string>

#include "arch/accelerator.hpp"
#include "arch/cycle_sim.hpp"
#include "nn/network.hpp"

namespace mnsim::sim {

// Serializes the report. All quantities are SI (m^2, W, J, s) with the
// same field names as the structs. When `cycles` is non-null (the run
// had [cycle] Enabled) a "cycle" block with the makespan, stall
// decomposition and per-bank traffic rides along.
std::string report_to_json(const nn::Network& network,
                           const arch::AcceleratorReport& report,
                           const arch::CycleSimResult* cycles);
std::string report_to_json(const nn::Network& network,
                           const arch::AcceleratorReport& report);

// Minimal JSON reader for the flat numeric fields this writer emits:
// returns dotted-path -> number (e.g. "totals.area", "banks.0.area").
// Strings and booleans are skipped. Throws std::runtime_error on
// malformed input.
std::map<std::string, double> parse_json_numbers(const std::string& json);

}  // namespace mnsim::sim
