// Customized designs (paper Sec. III-E, VII-E).
//
// Users whose accelerator deviates from the reference hierarchy describe
// it as a bag of modules — each with a performance quadruple, an
// instance count, and a per-task activation count — plus an optional
// inner pipeline (ISAAC's 22-stage tile). Module quadruples can come from
// MNSIM's own circuit models, from an NVSim-format file (nvsim_io.hpp),
// or from published numbers (how the paper imported ISAAC's S&H, eDRAM
// and DAC/ADC). build_prime_ff_subarray and build_isaac_tile assemble the
// two Sec. VII-E case studies.
#pragma once

#include <string>
#include <vector>

#include "circuit/module.hpp"

namespace mnsim::sim {

struct CustomModule {
  std::string name;
  circuit::Ppa ppa;           // one instance; latency = one activation
  long count = 1;             // instances
  double ops_per_task = 1.0;  // activations of each instance per task
  bool on_critical_path = false;
  // When >= 0 this energy per activation overrides ppa.dynamic_power *
  // ppa.latency (for modules imported as energy figures).
  double energy_per_op = -1.0;

  [[nodiscard]] double task_energy() const;
};

struct CustomAcceleratorSpec {
  std::string name;
  std::vector<CustomModule> modules;
  // Inner pipeline: when stages > 1 the task latency is
  // stages * cycle_time * task_cycles (ISAAC style); otherwise the
  // critical-path modules chain.
  int pipeline_stages = 1;
  double cycle_time = 0.0;
  double task_cycles = 1.0;

  CustomModule& add(std::string name, circuit::Ppa ppa, long count = 1,
                    double ops_per_task = 1.0, bool critical = false);
  void validate() const;
};

struct CustomReport {
  double area = 0.0;
  double leakage_power = 0.0;
  double latency = 0.0;          // one task [s]
  double energy_per_task = 0.0;  // dynamic + leakage * latency [J]
  double power = 0.0;
};

CustomReport simulate_custom(const CustomAcceleratorSpec& spec);

// Sec. VII-E.1: a PRIME full-function subarray — four 256x256 RRAM
// crossbars, 6-bit input/output, 4-bit cells (four cells per 8-bit signed
// weight), 65 nm CMOS, with the adders / neurons / pooling moved inside
// the reconfigurable units. The task is one 256x256 DNN layer.
CustomAcceleratorSpec build_prime_ff_subarray();

// Sec. VII-E.2: an ISAAC tile — 96 128x128 crossbars, 32 nm CMOS, with
// the S&H, eDRAM buffer and custom DAC/ADC imported as published module
// figures and a 22-cycle inner pipeline. The task fills all crossbars.
CustomAcceleratorSpec build_isaac_tile();

}  // namespace mnsim::sim
