#include "sim/mnsim.hpp"

#include <sstream>

#include "check/config_check.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace mnsim::sim {

using namespace mnsim::units;

arch::AcceleratorConfig load_config(const std::string& path) {
  return load_config(path, nullptr);
}

arch::AcceleratorConfig load_config(const std::string& path,
                                    check::DiagnosticList* diagnostics) {
  const util::Config raw = util::Config::load(path);
  arch::AcceleratorConfig config = arch::AcceleratorConfig::from_config(raw);
  if (diagnostics != nullptr) {
    // from_config has probed every key it understands; what is left
    // unread is the silent-typo class (MN-CFG-006).
    check::check_unread_keys(raw, *diagnostics);
  }
  return config;
}

arch::AcceleratorReport simulate(const nn::Network& network,
                                 const arch::AcceleratorConfig& config) {
  return arch::simulate_accelerator(network, config);
}

std::string format_report(const nn::Network& network,
                          const arch::AcceleratorReport& report) {
  std::ostringstream os;
  os << "MNSIM report: " << network.name << " (" << network.depth()
     << " computation banks, " << report.total_units << " units, "
     << report.total_crossbars << " crossbars)\n";

  // Pre-flight analyzer findings first, so warnings frame the numbers
  // below them (errors would have refused the run entirely).
  for (const auto& diag : report.diagnostics) os << diag.render() << "\n";

  util::Table totals("Accelerator totals");
  totals.set_header({"Metric", "Value"});
  totals.add_row({"Area (mm^2)", util::Table::num(report.area / mm2, 3)});
  totals.add_row({"Power (W)", util::Table::num(report.power, 4)});
  totals.add_row(
      {"Leakage (W)", util::Table::num(report.leakage_power, 4)});
  totals.add_row({"Energy per sample (uJ)",
                  util::Table::num(report.energy_per_sample / uJ, 4)});
  totals.add_row({"Sample latency (us)",
                  util::Table::num(report.sample_latency / us, 4)});
  totals.add_row({"Pipeline cycle (us)",
                  util::Table::num(report.pipeline_cycle / us, 4)});
  totals.add_row({"Worst-case error (%)",
                  util::Table::num(100 * report.max_error_rate, 3)});
  totals.add_row({"Average error (%)",
                  util::Table::num(100 * report.avg_error_rate, 3)});
  totals.add_row({"Relative accuracy (%)",
                  util::Table::num(100 * report.relative_accuracy, 2)});
  os << totals.str();

  // Robustness: surface fault injection and degraded solves so nobody
  // mistakes a fallback-assisted run for a clean one.
  if (report.fault_config.enabled() || report.solver.degraded()) {
    util::Table robust("Fault injection / solver diagnostics");
    robust.set_header({"Metric", "Value"});
    robust.add_row(
        {"Fault seed", std::to_string(report.fault_config.seed)});
    robust.add_row({"Faults injected",
                    std::to_string(report.solver.faults_injected)});
    robust.add_row({"CG retries", std::to_string(report.solver.cg_retries)});
    robust.add_row(
        {"LU fallbacks", std::to_string(report.solver.lu_fallbacks)});
    robust.add_row(
        {"Damped Newton steps", std::to_string(report.solver.damped_steps)});
    robust.add_row({"Worst linear residual",
                    util::Table::sig(report.solver.linear_residual, 3)});
    robust.add_row({"Pattern cache hits",
                    std::to_string(report.solver.cache_hits)});
    robust.add_row({"CG warm starts",
                    std::to_string(report.solver.warm_starts)});
    robust.add_row({"Schur (structured) solves",
                    std::to_string(report.solver.schur_solves)});
    robust.add_row({"Schur factor reuses",
                    std::to_string(report.solver.factor_reuses)});
    robust.add_row({"Solver threads",
                    std::to_string(report.solver.threads)});
    os << robust.str();
  }

  util::Table modules("Module-class breakdown (area / dynamic energy)");
  modules.set_header({"Module class", "Area (mm^2)", "Area share",
                      "Energy (uJ)", "Energy share"});
  const auto total = report.breakdown.total();
  auto module_row = [&](const char* name, const arch::BreakdownItem& item) {
    modules.add_row(
        {name, util::Table::num(item.area / mm2, 4),
         util::Table::num(total.area > 0 ? 100 * item.area / total.area : 0,
                          1) +
             "%",
         util::Table::num(item.energy / uJ, 5),
         util::Table::num(
             total.energy > 0 ? 100 * item.energy / total.energy : 0, 1) +
             "%"});
  };
  module_row("Memristor crossbars", report.breakdown.crossbars);
  module_row("Input DACs", report.breakdown.input_dacs);
  module_row("Read circuits (MUX+sub+ADC)", report.breakdown.read_circuits);
  module_row("Decoders", report.breakdown.decoders);
  module_row("Control/digital", report.breakdown.digital);
  module_row("Adder trees", report.breakdown.adder_trees);
  module_row("Neurons", report.breakdown.neurons);
  module_row("Pooling (+buffer)", report.breakdown.pooling);
  module_row("Output buffers", report.breakdown.buffers);
  module_row("I/O interfaces", report.breakdown.interfaces);
  os << modules.str();

  util::Table banks("Per-bank breakdown");
  banks.set_header({"Bank", "Units", "Area (mm^2)", "Energy (uJ)",
                    "Pass latency (us)", "Iterations", "Worst eps (%)"});
  int index = 0;
  for (const auto& b : report.banks) {
    banks.add_row({std::to_string(index++),
                   std::to_string(b.mapping.unit_count),
                   util::Table::num(b.area / mm2, 3),
                   util::Table::num(b.energy_per_sample / uJ, 4),
                   util::Table::num(b.pass_latency / us, 4),
                   std::to_string(b.iterations),
                   util::Table::num(100 * b.epsilon_worst, 3)});
  }
  os << banks.str();
  return os.str();
}

std::string format_cycle_report(const arch::CycleSimResult& result) {
  std::ostringstream os;
  for (const auto& diag : result.diagnostics) os << diag.render() << "\n";

  util::Table totals("Cycle-level dataflow (" +
                     std::string(arch::dataflow_name(result.dataflow)) + ", " +
                     arch::fill_policy_name(result.fill_policy) + " fills)");
  totals.set_header({"Metric", "Value"});
  totals.add_row({"Clock (GHz)", util::Table::num(result.clock_hz / 1e9, 4)});
  totals.add_row({"Makespan (cycles)", std::to_string(result.makespan_cycles)});
  totals.add_row(
      {"Makespan (us)", util::Table::num(result.makespan_seconds / us, 4)});
  totals.add_row({"Tiles scheduled", std::to_string(result.total_tiles)});
  totals.add_row(
      {"Compute cycles", std::to_string(result.total_busy_cycles)});
  totals.add_row({"Stall cycles", std::to_string(result.total_stall_cycles)});
  totals.add_row({"Stall fraction (%)",
                  util::Table::num(100 * result.stall_fraction, 2)});
  totals.add_row({"PE scheduled (%)",
                  util::Table::num(100 * result.pe_scheduled_fraction, 2)});
  totals.add_row({"PE active (%)",
                  util::Table::num(100 * result.pe_active_fraction, 2)});
  totals.add_row({"Backing traffic (KB)",
                  util::Table::num(result.backing_traffic_bytes / 1024.0, 1)});
  totals.add_row({"Weight image (KB)",
                  util::Table::num(result.weight_image_bytes / 1024.0, 1)});
  os << totals.str();

  util::Table banks("Per-bank stall decomposition (cycles)");
  banks.set_header({"Bank", "Tiles", "Busy", "Dep stall", "Fill stall",
                    "Drain stall", "Bus busy", "Util (%)"});
  int index = 0;
  for (const auto& b : result.banks) {
    banks.add_row({std::to_string(index++), std::to_string(b.tiles),
                   std::to_string(b.busy_cycles),
                   std::to_string(b.dependency_stall_cycles),
                   std::to_string(b.fill_stall_cycles),
                   std::to_string(b.drain_stall_cycles),
                   std::to_string(b.bus_busy_cycles),
                   util::Table::num(100 * b.utilization, 1)});
  }
  os << banks.str();
  return os.str();
}

}  // namespace mnsim::sim
