// NVSim interoperability (paper Sec. III-E.4).
//
// MNSIM exposes each computation-oriented module's performance in an
// NVSim-style key/value text block so results can flow both ways: NVSim
// module results can be imported as custom modules, and MNSIM module
// models can be exported for use inside NVSim.
//
// Format (one module per block):
//   -ModuleName: Sigmoid
//   -Area (um^2): 605.2
//   -DynamicPower (mW): 0.21
//   -LeakagePower (uW): 12.5
//   -Latency (ns): 1.2
#pragma once

#include <string>
#include <vector>

#include "circuit/module.hpp"

namespace mnsim::sim {

struct NvsimModule {
  std::string name;
  circuit::Ppa ppa;
};

// Renders one module block.
std::string write_nvsim_module(const NvsimModule& module);

// Parses all module blocks in `text`. Throws util::ConfigError-style
// std::runtime_error on malformed blocks.
std::vector<NvsimModule> read_nvsim_modules(const std::string& text);

// File helpers. save writes atomically and durably (util::atomic_file)
// and throws std::runtime_error when the write fails.
void save_nvsim_modules(const std::string& path,
                        const std::vector<NvsimModule>& modules);
std::vector<NvsimModule> load_nvsim_modules(const std::string& path);

}  // namespace mnsim::sim
