#include "sim/nvsim_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/config.hpp"
#include "util/units.hpp"

namespace mnsim::sim {

using namespace mnsim::units;

std::string write_nvsim_module(const NvsimModule& module) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "-ModuleName: %s\n"
                "-Area (um^2): %.6g\n"
                "-DynamicPower (mW): %.6g\n"
                "-LeakagePower (uW): %.6g\n"
                "-Latency (ns): %.6g\n",
                module.name.c_str(), module.ppa.area / um2,
                module.ppa.dynamic_power / mW,
                module.ppa.leakage_power / uW, module.ppa.latency / ns);
  return buf;
}

std::vector<NvsimModule> read_nvsim_modules(const std::string& text) {
  std::vector<NvsimModule> modules;
  std::istringstream in(text);
  std::string line;
  NvsimModule current;
  bool open = false;

  auto flush = [&] {
    if (open) modules.push_back(current);
    current = NvsimModule{};
    open = false;
  };

  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = util::trim(line);
    if (line.empty()) continue;
    if (line.front() != '-')
      throw std::runtime_error("nvsim line " + std::to_string(line_no) +
                               ": expected '-Key: value'");
    const auto colon = line.find(':');
    if (colon == std::string::npos)
      throw std::runtime_error("nvsim line " + std::to_string(line_no) +
                               ": missing ':'");
    const std::string key = util::trim(line.substr(1, colon - 1));
    const std::string value = util::trim(line.substr(colon + 1));
    if (key == "ModuleName") {
      flush();
      current.name = value;
      open = true;
      continue;
    }
    if (!open)
      throw std::runtime_error("nvsim line " + std::to_string(line_no) +
                               ": field before ModuleName");
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str())
      throw std::runtime_error("nvsim line " + std::to_string(line_no) +
                               ": non-numeric value '" + value + "'");
    if (key == "Area (um^2)")
      current.ppa.area = v * um2;
    else if (key == "DynamicPower (mW)")
      current.ppa.dynamic_power = v * mW;
    else if (key == "LeakagePower (uW)")
      current.ppa.leakage_power = v * uW;
    else if (key == "Latency (ns)")
      current.ppa.latency = v * ns;
    else
      throw std::runtime_error("nvsim line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
  }
  flush();
  return modules;
}

void save_nvsim_modules(const std::string& path,
                        const std::vector<NvsimModule>& modules) {
  std::string text;
  for (const auto& m : modules) text += write_nvsim_module(m) + "\n";
  util::atomic_write_file(path, text);
}

std::vector<NvsimModule> load_nvsim_modules(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open nvsim file: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return read_nvsim_modules(os.str());
}

}  // namespace mnsim::sim
