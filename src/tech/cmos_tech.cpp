#include "tech/cmos_tech.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mnsim::tech {

using namespace mnsim::units;
using namespace mnsim::units::literals;

namespace {

// Supply voltage by node, piecewise from the ITRS roadmap; interpolated
// logarithmically between anchors for non-listed nodes.
double vdd_for(int node_nm) {
  struct Anchor {
    int node;
    double vdd;
  };
  static constexpr Anchor anchors[] = {{250, 2.5}, {180, 1.8}, {130, 1.3},
                                       {90, 1.2},  {65, 1.1},  {45, 1.0},
                                       {32, 0.9},  {28, 0.9},  {16, 0.8}};
  if (node_nm >= anchors[0].node) return anchors[0].vdd;
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (node_nm >= anchors[i].node) {
      const auto& hi = anchors[i - 1];
      const auto& lo = anchors[i];
      double t = std::log(static_cast<double>(node_nm) / lo.node) /
                 std::log(static_cast<double>(hi.node) / lo.node);
      return lo.vdd + t * (hi.vdd - lo.vdd);
    }
  }
  return anchors[std::size(anchors) - 1].vdd;
}

}  // namespace

CmosTech cmos_tech(int node_nm) {
  if (node_nm < 16 || node_nm > 250) {
    throw std::invalid_argument("cmos_tech: node " + std::to_string(node_nm) +
                                " nm outside supported range [16, 250]");
  }
  // 45 nm anchors (CACTI/PTM-class magnitudes).
  constexpr Seconds kGateDelay45 = 20_ps;  // FO4-ish minimum gate delay
  constexpr Joules kGateEnergy45 = 1.0_fJ; // C*V^2 with ~1 fF switched cap
  constexpr Watts kGateLeak45 = 20_nW;
  constexpr double kGateArea45 = 100.0;      // in F^2
  constexpr double kRegArea45 = 650.0;       // in F^2
  constexpr double kRegEnergy45 = 4.0;       // in gate-energy units
  constexpr double kSramArea45 = 146.0;      // in F^2

  CmosTech t;
  t.node_nm = node_nm;
  t.feature_size = node_nm * 1.0_nm;
  t.vdd = Volts{vdd_for(node_nm)};

  const double scale = node_nm / 45.0;       // linear scale factor
  const double vscale = t.vdd / 1.0_V;       // voltage scale vs 45 nm
  const Area f2 = t.feature_size * t.feature_size;

  t.gate_delay = kGateDelay45 * scale;
  t.gate_energy = kGateEnergy45 * scale * vscale * vscale;  // CV^2, C ~ F
  t.gate_leakage = kGateLeak45 * scale * vscale;
  t.gate_area = kGateArea45 * f2;
  t.reg_area = kRegArea45 * f2;
  t.reg_energy = kRegEnergy45 * t.gate_energy;
  t.reg_leakage = 4.0 * t.gate_leakage;
  t.sram_bit_area = kSramArea45 * f2;
  return t;
}

const std::vector<int>& standard_cmos_nodes() {
  static const std::vector<int> nodes = {130, 90, 65, 45, 32, 28};
  return nodes;
}

}  // namespace mnsim::tech
