// Interconnect (crossbar wire) technology.
//
// The accuracy model (paper Sec. VI) reduces each wire segment between
// neighbouring crossbar cells to a lumped resistance r; the circuit-level
// simulator can additionally attach the per-segment capacitance for the
// RC-delay ablation. Resistance per segment scales as the inverse wire
// cross-section (~node^-2); capacitance per segment is roughly
// length-proportional (~node).
#pragma once

#include "util/quantity.hpp"

namespace mnsim::tech {

struct InterconnectTech {
  int node_nm = 45;
  units::Ohms segment_resistance;    // r between neighbouring cells
  units::Farads segment_capacitance; // per-segment wire capacitance
};

// Parameters for an interconnect technology node (nm). The paper sweeps
// {18, 22, 28, 36, 45} and extends to 90 for the CNN study; any node in
// [10, 180] is accepted. Throws std::invalid_argument outside that range.
InterconnectTech interconnect_tech(int node_nm);

// The paper's interconnect sweep for the large-bank case study.
inline constexpr int kInterconnectSweep[] = {18, 22, 28, 36, 45};

// Shared-current wire model. In a crossbar every row wire carries the
// current of all columns and every column wire accumulates the current of
// all rows, so the worst-case column sees an effective series wire
// resistance of roughly alpha * (M^2 + N^2)/2 segments referenced to a
// single cell's current (not the (M+N) of a lone cell path). The
// coefficient alpha is calibrated against the circuit-level solver by the
// Fig. 5 fitting procedure (accuracy::calibrate_against_spice); 0.90 is
// the fitted default for the reference device.
inline constexpr double kSharedCurrentAlpha = 0.90;

double effective_wire_segments(int rows, int cols,
                               double alpha = kSharedCurrentAlpha);

}  // namespace mnsim::tech
