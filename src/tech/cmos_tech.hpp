// CMOS technology parameters.
//
// MNSIM consumes per-node scalar parameters for its transistor-based
// modules (decoders, adders, neurons, buffers, ...). The authors pull
// these from CACTI, NVSim and the Predictive Technology Model; we embed a
// table anchored at 45 nm and derived with the published first-order
// scaling laws (area ~ F^2, delay ~ F, switching energy ~ F * Vdd^2),
// which is the granularity the paper's experiments actually exercise.
#pragma once

#include <vector>

namespace mnsim::tech {

struct CmosTech {
  int node_nm = 45;         // feature size F in nanometres
  double feature_size = 0;  // F in metres
  double vdd = 0;           // supply voltage [V]
  double gate_delay = 0;    // FO4-class delay of a minimum gate [s]
  double gate_energy = 0;   // switching energy of a minimum 2-input gate [J]
  double gate_leakage = 0;  // static power of a minimum 2-input gate [W]
  double gate_area = 0;     // layout area of a minimum 2-input gate [m^2]
  double reg_area = 0;      // area of one register bit (DFF) [m^2]
  double reg_energy = 0;    // clocking energy of one register bit [J]
  double reg_leakage = 0;   // leakage of one register bit [W]
  double sram_bit_area = 0; // area of one SRAM bit [m^2] (buffers)
};

// Returns the technology parameters for a node (nm). Supported nodes are
// the ones the paper uses (130, 90, 65, 45, 32, 28); other values in
// [16, 250] are derived from the same scaling laws. Throws
// std::invalid_argument outside that range.
CmosTech cmos_tech(int node_nm);

// Nodes the paper's experiments touch, largest first.
const std::vector<int>& standard_cmos_nodes();

}  // namespace mnsim::tech
