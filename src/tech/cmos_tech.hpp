// CMOS technology parameters.
//
// MNSIM consumes per-node scalar parameters for its transistor-based
// modules (decoders, adders, neurons, buffers, ...). The authors pull
// these from CACTI, NVSim and the Predictive Technology Model; we embed a
// table anchored at 45 nm and derived with the published first-order
// scaling laws (area ~ F^2, delay ~ F, switching energy ~ F * Vdd^2),
// which is the granularity the paper's experiments actually exercise.
#pragma once

#include <vector>

#include "util/quantity.hpp"

namespace mnsim::tech {

struct CmosTech {
  int node_nm = 45;              // feature size F in nanometres (node label)
  units::Metres feature_size;    // F
  units::Volts vdd;              // supply voltage
  units::Seconds gate_delay;     // FO4-class delay of a minimum gate
  units::Joules gate_energy;     // switching energy of a minimum 2-input gate
  units::Watts gate_leakage;     // static power of a minimum 2-input gate
  units::Area gate_area;         // layout area of a minimum 2-input gate
  units::Area reg_area;          // area of one register bit (DFF)
  units::Joules reg_energy;      // clocking energy of one register bit
  units::Watts reg_leakage;      // leakage of one register bit
  units::Area sram_bit_area;     // area of one SRAM bit (buffers)
};

// Returns the technology parameters for a node (nm). Supported nodes are
// the ones the paper uses (130, 90, 65, 45, 32, 28); other values in
// [16, 250] are derived from the same scaling laws. Throws
// std::invalid_argument outside that range.
CmosTech cmos_tech(int node_nm);

// Nodes the paper's experiments touch, largest first.
const std::vector<int>& standard_cmos_nodes();

}  // namespace mnsim::tech
