#include "tech/interconnect.hpp"

#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace mnsim::tech {

using namespace mnsim::units;
using namespace mnsim::units::literals;

InterconnectTech interconnect_tech(int node_nm) {
  if (node_nm < 10 || node_nm > 180) {
    throw std::invalid_argument("interconnect_tech: node " +
                                std::to_string(node_nm) +
                                " nm outside supported range [10, 180]");
  }
  // Calibration anchor: 45 nm copper, segment length of one cell pitch.
  // The anchor value is chosen so the worst-case voltage error of a
  // 256x256 crossbar lands in the band the paper reports (~8 % at 45 nm
  // and ~18 % at 28 nm; Tables IV/V). Resistance grows as the inverse of
  // the wire cross-section when the node shrinks.
  constexpr Ohms kR45 = 0.022_Ohm;     // per segment at 45 nm
  constexpr Farads kC45 = 0.06_fF;     // per segment at 45 nm

  const double scale = 45.0 / node_nm;
  InterconnectTech t;
  t.node_nm = node_nm;
  t.segment_resistance = kR45 * scale * scale;
  t.segment_capacitance = kC45 / scale;
  return t;
}

double effective_wire_segments(int rows, int cols, double alpha) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("effective_wire_segments: rows/cols");
  return alpha * 0.5 *
         (static_cast<double>(rows) * rows + static_cast<double>(cols) * cols);
}

}  // namespace mnsim::tech
