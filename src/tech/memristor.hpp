// Memristor device models (paper Sec. II-A, V-A, VI-A, VI-D).
//
// A memristor cell is a passive two-port element with a programmable
// resistance state. MNSIM treats each cell as a fixed multi-level weight
// during computation. The model covers:
//   * the resistance range [r_min, r_max] (Table I: default [500, 500k] ohm),
//   * multi-level storage (7-bit reference device, conductance-linear levels),
//   * the nonlinear V-I characteristic I = A*sinh(V / v_t), calibrated in
//     the low-voltage (linear) limit so R_act(V -> 0) = R_state — the
//     deviation R_act(V) < R_state at operating voltage is exactly the
//     non-ideal factor the accuracy model (Eq. 11) charges against small
//     crossbars,
//   * lognormal-free bounded device variation (Eq. 16: (1 +/- sigma)*R_act),
//   * cell geometry for the two cell types (Eq. 7: MOS-accessed 1T1R,
//     Eq. 8: cross-point 0T1R).
#pragma once

#include <string>

#include "util/quantity.hpp"

namespace mnsim::tech {

enum class DeviceKind { kRram, kPcm, kSttMram };
enum class CellType { k1T1R, k0T1R };

// Saturation bound on the sinh argument |v| / v_t. sinh overflows a
// double near an argument of ~710, and Newton iterates routinely
// overshoot the physical operating range mid-solve; every evaluation of
// the device law (current, actual_resistance, the MNA linearization and
// the transient companion model) clamps to this bound so an overshoot
// saturates instead of turning into inf conductance. 40 keeps the model
// exact over the entire representable operating range (sinh(40) ~ 1e17,
// far beyond any physical bias) while leaving 600x headroom to overflow.
inline constexpr double kMaxSinhArg = 40.0;

struct MemristorModel {
  DeviceKind kind = DeviceKind::kRram;
  std::string name = "RRAM";
  units::Ohms r_min{500.0};   // lowest resistance state
  units::Ohms r_max{500e3};   // highest resistance state
  int level_bits = 7;         // bits per cell (2^bits resistance levels)
  units::Volts v_read{0.05};  // full-scale input (read) voltage
  units::Volts v_write{2.0};  // programming voltage
  units::Volts nonlinearity_vt{0.05};  // sinh scale; larger = more linear
  double sigma = 0.0;         // max relative resistance deviation (0..0.3)
  double feature_nm = 45;     // memristor feature size F in nm (node label)
  units::Seconds write_latency{10e-9};  // per-level programming pulse
  units::Seconds read_latency{5e-9};    // cell read settling
  double transistor_wl = 3.0;     // W/L of the access transistor (1T1R)
  double endurance = 1e9;         // programming cycles before wear-out

  // Energy of one programming pulse: v_write^2 / R over the pulse width,
  // at the harmonic-mean resistance (the average-case rule of Sec. V-A).
  [[nodiscard]] units::Joules write_pulse_energy() const;

  [[nodiscard]] int levels() const { return 1 << level_bits; }

  // Resistance of level `level` in [0, levels-1]; levels are linear in
  // conductance (level 0 = g_min = 1/r_max, max level = g_max = 1/r_min),
  // the standard programming target for matrix storage.
  [[nodiscard]] units::Ohms resistance_for_level(int level) const;

  // Conductance-space inverse of resistance_for_level: the nearest level
  // for a desired conductance (clamped to the device range).
  [[nodiscard]] int level_for_conductance(units::Siemens g) const;

  // Harmonic mean of r_min and r_max; the paper uses it as the
  // average-case cell resistance for power estimation (Sec. V-A).
  [[nodiscard]] units::Ohms harmonic_mean_resistance() const;

  // Device current at cell voltage v for a cell programmed to r_state.
  [[nodiscard]] units::Amps current(units::Ohms r_state, units::Volts v) const;

  // Effective (chord) resistance V/I at operating voltage v. Equals
  // r_state in the linear limit v -> 0 and monotonically decreases with
  // |v| (sinh super-linearity).
  [[nodiscard]] units::Ohms actual_resistance(units::Ohms r_state,
                                              units::Volts v) const;

  // actual_resistance with the Eq. 16 worst-case variation applied;
  // `direction` is +1 or -1 for (1 + sigma) or (1 - sigma).
  [[nodiscard]] units::Ohms varied_resistance(units::Ohms r_state,
                                              units::Volts v,
                                              int direction) const;

  // Validates invariants (0 < r_min < r_max, bits in [1, 10], ...).
  // Throws std::invalid_argument when violated.
  void validate() const;
};

// Reference devices. The RRAM parameters follow Table I and the 7-bit
// device the case studies cite; PCM is coarser (4-bit) with a narrower
// resistance window and slower writes; STT-MRAM is binary (1-bit) with a
// small high/low ratio (~2x TMR) but near-unlimited endurance and fast,
// highly linear switching — the substrate for binary-CNN mappings.
MemristorModel default_rram();
MemristorModel default_pcm();
MemristorModel default_stt_mram();
MemristorModel memristor_by_name(const std::string& name);

// Cell area per Eq. 7 / Eq. 8. For 1T1R: 3*(W/L + 1)*F^2 with the
// access transistor W/L; for 0T1R (cross-point): 4*F^2.
units::Area cell_area(const MemristorModel& device, CellType cell);

}  // namespace mnsim::tech
