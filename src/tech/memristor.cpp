#include "tech/memristor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mnsim::tech {

using namespace mnsim::units;
using namespace mnsim::units::literals;

Ohms MemristorModel::resistance_for_level(int level) const {
  if (level < 0 || level >= levels())
    throw std::out_of_range("MemristorModel: level out of range");
  const Siemens g_min = 1.0 / r_max;
  const Siemens g_max = 1.0 / r_min;
  const double t = levels() > 1
                       ? static_cast<double>(level) / (levels() - 1)
                       : 0.0;
  return 1.0 / (g_min + t * (g_max - g_min));
}

int MemristorModel::level_for_conductance(Siemens g) const {
  const Siemens g_min = 1.0 / r_max;
  const Siemens g_max = 1.0 / r_min;
  const Siemens clamped = std::clamp(g, g_min, g_max);
  const double t = (clamped - g_min) / (g_max - g_min);
  return static_cast<int>(std::lround(t * (levels() - 1)));
}

Ohms MemristorModel::harmonic_mean_resistance() const {
  return 2.0 / (1.0 / r_min + 1.0 / r_max);
}

Joules MemristorModel::write_pulse_energy() const {
  return v_write * v_write / harmonic_mean_resistance() * write_latency;
}

Amps MemristorModel::current(Ohms r_state, Volts v) const {
  // I = A*sinh(v / vt), with A = vt / r_state so that dI/dV at V=0 is
  // 1/r_state (linear-limit calibration). The argument saturates at
  // kMaxSinhArg: beyond it sinh would overflow double long before any
  // physical bias is reached (see memristor.hpp).
  const Amps a = nonlinearity_vt / r_state;
  const double u = std::clamp(v / nonlinearity_vt, -kMaxSinhArg, kMaxSinhArg);
  return a * std::sinh(u);
}

Ohms MemristorModel::actual_resistance(Ohms r_state, Volts v) const {
  const double u = std::min(abs(v) / nonlinearity_vt, kMaxSinhArg);
  if (u < 1e-9) return r_state;
  return r_state * u / std::sinh(u);
}

Ohms MemristorModel::varied_resistance(Ohms r_state, Volts v,
                                       int direction) const {
  const double factor = 1.0 + (direction >= 0 ? sigma : -sigma);
  return actual_resistance(r_state, v) * factor;
}

void MemristorModel::validate() const {
  if (!(r_min > 0_Ohm) || !(r_max > r_min))
    throw std::invalid_argument("MemristorModel: need 0 < r_min < r_max");
  if (level_bits < 1 || level_bits > 10)
    throw std::invalid_argument("MemristorModel: level_bits outside [1,10]");
  if (!(v_read > 0_V) || !(nonlinearity_vt > 0_V))
    throw std::invalid_argument("MemristorModel: voltages must be positive");
  if (sigma < 0 || sigma > 0.3)
    throw std::invalid_argument("MemristorModel: sigma outside [0, 0.3]");
  if (feature_nm <= 0)
    throw std::invalid_argument("MemristorModel: feature size");
  if (!(endurance > 0))
    throw std::invalid_argument("MemristorModel: endurance");
}

MemristorModel default_rram() {
  MemristorModel m;
  m.kind = DeviceKind::kRram;
  m.name = "RRAM";
  // Defaults already match Table I / the 7-bit reference device.
  m.validate();
  return m;
}

MemristorModel default_pcm() {
  MemristorModel m;
  m.kind = DeviceKind::kPcm;
  m.name = "PCM";
  m.r_min = 5_kOhm;
  m.r_max = 1_MOhm;
  m.level_bits = 4;
  m.v_read = 50_mV;
  m.v_write = 3_V;
  m.nonlinearity_vt = 80_mV;
  m.write_latency = 100_ns;  // SET/RESET pulses are slower than RRAM
  m.read_latency = 10_ns;
  m.endurance = 1e8;  // PCM wears out earlier than RRAM
  m.validate();
  return m;
}

MemristorModel default_stt_mram() {
  MemristorModel m;
  m.kind = DeviceKind::kSttMram;
  m.name = "STT-MRAM";
  m.r_min = 2_kOhm;  // parallel state
  m.r_max = 5_kOhm;  // anti-parallel: ~2.5x TMR ratio
  m.level_bits = 1;
  m.v_read = 50_mV;
  m.v_write = 0.6_V;         // spin-torque switching voltage
  m.nonlinearity_vt = 0.5_V; // MTJs are close to ohmic at read bias
  m.write_latency = 3_ns;    // fast switching
  m.read_latency = 2_ns;
  m.endurance = 1e15;        // effectively unlimited
  m.validate();
  return m;
}

MemristorModel memristor_by_name(const std::string& name) {
  if (name == "RRAM" || name == "rram") return default_rram();
  if (name == "PCM" || name == "pcm") return default_pcm();
  if (name == "STT-MRAM" || name == "stt-mram" || name == "STTMRAM")
    return default_stt_mram();
  throw std::invalid_argument("memristor_by_name: unknown device '" + name +
                              "'");
}

Area cell_area(const MemristorModel& device, CellType cell) {
  const Metres f = device.feature_nm * 1.0_nm;
  const Area f2 = f * f;
  switch (cell) {
    case CellType::k1T1R:
      return 3.0 * (device.transistor_wl + 1.0) * f2;  // Eq. 7
    case CellType::k0T1R:
      return 4.0 * f2;  // Eq. 8
  }
  throw std::logic_error("cell_area: unreachable");
}

}  // namespace mnsim::tech
