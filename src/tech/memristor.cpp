#include "tech/memristor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mnsim::tech {

using namespace mnsim::units;

double MemristorModel::resistance_for_level(int level) const {
  if (level < 0 || level >= levels())
    throw std::out_of_range("MemristorModel: level out of range");
  const double g_min = 1.0 / r_max;
  const double g_max = 1.0 / r_min;
  const double t = levels() > 1
                       ? static_cast<double>(level) / (levels() - 1)
                       : 0.0;
  return 1.0 / (g_min + t * (g_max - g_min));
}

int MemristorModel::level_for_conductance(double g) const {
  const double g_min = 1.0 / r_max;
  const double g_max = 1.0 / r_min;
  const double clamped = std::clamp(g, g_min, g_max);
  const double t = (clamped - g_min) / (g_max - g_min);
  return static_cast<int>(std::lround(t * (levels() - 1)));
}

double MemristorModel::harmonic_mean_resistance() const {
  return 2.0 / (1.0 / r_min + 1.0 / r_max);
}

double MemristorModel::write_pulse_energy() const {
  return v_write * v_write / harmonic_mean_resistance() * write_latency;
}

double MemristorModel::current(double r_state, double v) const {
  // I = A*sinh(v / vt), with A = vt / r_state so that dI/dV at V=0 is
  // 1/r_state (linear-limit calibration).
  const double a = nonlinearity_vt / r_state;
  return a * std::sinh(v / nonlinearity_vt);
}

double MemristorModel::actual_resistance(double r_state, double v) const {
  const double u = std::fabs(v) / nonlinearity_vt;
  if (u < 1e-9) return r_state;
  return r_state * u / std::sinh(u);
}

double MemristorModel::varied_resistance(double r_state, double v,
                                         int direction) const {
  const double factor = 1.0 + (direction >= 0 ? sigma : -sigma);
  return actual_resistance(r_state, v) * factor;
}

void MemristorModel::validate() const {
  if (!(r_min > 0) || !(r_max > r_min))
    throw std::invalid_argument("MemristorModel: need 0 < r_min < r_max");
  if (level_bits < 1 || level_bits > 10)
    throw std::invalid_argument("MemristorModel: level_bits outside [1,10]");
  if (!(v_read > 0) || !(nonlinearity_vt > 0))
    throw std::invalid_argument("MemristorModel: voltages must be positive");
  if (sigma < 0 || sigma > 0.3)
    throw std::invalid_argument("MemristorModel: sigma outside [0, 0.3]");
  if (feature_nm <= 0)
    throw std::invalid_argument("MemristorModel: feature size");
  if (!(endurance > 0))
    throw std::invalid_argument("MemristorModel: endurance");
}

MemristorModel default_rram() {
  MemristorModel m;
  m.kind = DeviceKind::kRram;
  m.name = "RRAM";
  // Defaults already match Table I / the 7-bit reference device.
  m.validate();
  return m;
}

MemristorModel default_pcm() {
  MemristorModel m;
  m.kind = DeviceKind::kPcm;
  m.name = "PCM";
  m.r_min = 5e3;
  m.r_max = 1e6;
  m.level_bits = 4;
  m.v_read = 0.05;
  m.v_write = 3.0;
  m.nonlinearity_vt = 0.08;
  m.write_latency = 100e-9;  // SET/RESET pulses are slower than RRAM
  m.read_latency = 10e-9;
  m.endurance = 1e8;  // PCM wears out earlier than RRAM
  m.validate();
  return m;
}

MemristorModel default_stt_mram() {
  MemristorModel m;
  m.kind = DeviceKind::kSttMram;
  m.name = "STT-MRAM";
  m.r_min = 2e3;   // parallel state
  m.r_max = 5e3;   // anti-parallel: ~2.5x TMR ratio
  m.level_bits = 1;
  m.v_read = 0.05;
  m.v_write = 0.6;           // spin-torque switching voltage
  m.nonlinearity_vt = 0.5;   // MTJs are close to ohmic at read bias
  m.write_latency = 3e-9;    // fast switching
  m.read_latency = 2e-9;
  m.endurance = 1e15;        // effectively unlimited
  m.validate();
  return m;
}

MemristorModel memristor_by_name(const std::string& name) {
  if (name == "RRAM" || name == "rram") return default_rram();
  if (name == "PCM" || name == "pcm") return default_pcm();
  if (name == "STT-MRAM" || name == "stt-mram" || name == "STTMRAM")
    return default_stt_mram();
  throw std::invalid_argument("memristor_by_name: unknown device '" + name +
                              "'");
}

double cell_area(const MemristorModel& device, CellType cell) {
  const double f2 = (device.feature_nm * nm) * (device.feature_nm * nm);
  switch (cell) {
    case CellType::k1T1R:
      return 3.0 * (device.transistor_wl + 1.0) * f2;  // Eq. 7
    case CellType::k0T1R:
      return 4.0 * f2;  // Eq. 8
  }
  throw std::logic_error("cell_area: unreachable");
}

}  // namespace mnsim::tech
