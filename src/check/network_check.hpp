// Network / mapping / fault-map analysis (`mnsim check`, network pass).
//
// The behavior-level flow consumes a layer list, an accelerator
// configuration and (optionally) a defect map; each can be internally
// consistent yet mutually incompatible. These passes catch the
// structural problems before any bank is simulated:
//   * MN-NN-001 — layer shape-chain mismatches (a conv whose input
//     geometry is not the previous layer's output, an FC whose fan-in is
//     not the flattened preceding map),
//   * MN-NN-002 — invalid layer dimensions or network-level problems
//     (no weighted layers, precision bits out of range),
//   * MN-NN-003 — pooling placement (pool before any weighted layer,
//     window larger than the feature map; non-divisible windows warn),
//   * MN-NN-004 — layers the crossbar mapper cannot tile at all,
//   * MN-NN-005 — fault-map entries referencing cells outside the array,
//   * MN-NN-006 — weights spread across suspiciously many cells
//     (weight_bits far above the device level bits), a warning,
//   * MN-CUS-001..004 — customized-design module bags (Sec. III-E).
#pragma once

#include "arch/params.hpp"
#include "check/diagnostic.hpp"
#include "fault/fault_model.hpp"
#include "nn/network.hpp"
#include "sim/custom_module.hpp"

namespace mnsim::check {

// Structural pass over a network description alone (shape chain,
// dimensions, pooling placement).
[[nodiscard]] DiagnosticList check_network(const nn::Network& network);

// Cross-checks a network against an accelerator configuration: every
// weighted layer must tile onto the configured crossbars.
[[nodiscard]] DiagnosticList check_mapping(const nn::Network& network,
                                           const arch::AcceleratorConfig& cfg);

// Defect-map sanity: every stuck cell and broken line must reference a
// cell inside the rows x cols array.
[[nodiscard]] DiagnosticList check_defect_map(const fault::DefectMap& map);

// Customized-design spec (the diagnostic-producing core of
// sim::CustomAcceleratorSpec::validate()).
[[nodiscard]] DiagnosticList check_custom_spec(
    const sim::CustomAcceleratorSpec& spec);

}  // namespace mnsim::check
