// Netlist structural analysis (`mnsim check`, netlist pass).
//
// Inspects a spice::Netlist without solving it and reports every reason
// the DC operating-point solve could fail or mislead:
//   * construction invariants — dangling node ids, non-positive element
//     values, shorted elements, sources on ground, duplicate names
//     (MN-NET-006..010) — re-checked here so imported or hand-assembled
//     netlists share one validation path with constructed ones,
//   * source conflicts — a node pinned by two voltage sources, reported
//     with *which* sources collide (MN-NET-003),
//   * DC connectivity — union-find over the conductive elements
//     (resistors, memristors, source pins; capacitors are open at DC):
//     an island with no path to ground or to any source makes the
//     reduced conductance matrix a singular Laplacian block even though
//     every structural diagonal exists (MN-NET-001/002),
//   * structural MNA singularity — a maximum bipartite matching over the
//     stamped sparsity pattern of the reduced system; an unmatchable row
//     (e.g. a node touched only by capacitors) guarantees singularity
//     for *any* element values, before factorization (MN-NET-004),
//   * conditioning plausibility — conductance spread beyond
//     `conductance_spread_warning` predicts an ill-conditioned system
//     (MN-NET-005), and a netlist with no sources solves to all-zero
//     voltages (MN-NET-011).
//
// spice::solve_dc runs this analysis as its pre-flight (DcOptions::
// preflight) and refuses-with-diagnosis via check::CheckError instead of
// failing numerically; `Netlist::validate()` wraps the invariant subset.
#pragma once

#include "check/diagnostic.hpp"
#include "spice/netlist.hpp"

namespace mnsim::check {

struct NetlistCheckOptions {
  bool connectivity = true;       // union-find floating-island analysis
  bool structural_rank = true;    // bipartite-matching singularity pass
  bool warnings = true;           // plausibility warnings (005/010/011)
  double conductance_spread_warning = 1e12;  // max g / min g threshold
};

// Full structural analysis; never throws on bad structure (that is the
// caller's decision), only on internal misuse.
[[nodiscard]] DiagnosticList check_netlist(
    const spice::Netlist& netlist, const NetlistCheckOptions& options = {});

// The invariant subset Netlist::validate() wraps: element/node sanity and
// source-conflict detection, no graph passes.
[[nodiscard]] DiagnosticList check_netlist_invariants(
    const spice::Netlist& netlist);

}  // namespace mnsim::check
