// Configuration cross-field validation (`mnsim check`, config pass).
//
// Three layers of defense for the INI inputs, each with a stable code:
//   * key/section registry — the accelerator configuration and the
//     network-description dialect have a closed key set; an unknown key
//     in a known section is the classic silent typo (`Theads = 8`) and
//     reports MN-CFG-001 with a did-you-mean hint (edit distance over
//     the registry), an unknown section reports MN-CFG-002,
//   * per-key value validation — type, range, and structure (power-of-
//     two crossbars, [min, max] lists, enum spellings) as MN-CFG-003,
//     with unit-plausibility warnings (MN-CFG-005) computed through the
//     dimensional-safety Quantity layer,
//   * inter-key consistency — constraints spanning several keys
//     (parallelism vs. crossbar size, read-circuit quantization vs. cell
//     level bits, fault-check sub-array vs. array geometry, wire-drop
//     estimate from the interconnect node) as MN-CFG-004/005.
//
// Additionally, util::Config tracks which keys its consumers actually
// probed; keys that parse but are never read by any registered consumer
// report MN-CFG-006 (promotable to error via [check]
// Warnings_As_Errors).
#pragma once

#include "arch/params.hpp"
#include "check/diagnostic.hpp"
#include "util/config.hpp"

namespace mnsim::check {

// Full pass over an accelerator configuration file: registry + values +
// from_config bridge + consistency + unread keys.
[[nodiscard]] DiagnosticList check_accelerator_config(
    const util::Config& config);

// Registry pass over a network-description file (section/key dialect of
// nn/parser.hpp); value problems surface through the parse bridge in
// check_file / check_network.
[[nodiscard]] DiagnosticList check_network_description(
    const util::Config& config);

// Inter-key consistency over an already-built configuration (also the
// pre-flight entry used by simulate/explore, where no raw Config
// exists).
[[nodiscard]] DiagnosticList check_config_consistency(
    const arch::AcceleratorConfig& config);

// MN-CFG-006 for every parsed-but-never-probed key of `config`. Call
// after the consumer (e.g. AcceleratorConfig::from_config) has run.
void check_unread_keys(const util::Config& config, DiagnosticList& out);

// Closest registry entry within a small edit distance, for did-you-mean
// hints; empty when nothing is plausibly close.
[[nodiscard]] std::string nearest_key(const std::string& key,
                                      const std::vector<std::string>& known);

}  // namespace mnsim::check
