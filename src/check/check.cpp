#include "check/check.hpp"

#include <fstream>
#include <sstream>

#include "check/config_check.hpp"
#include "check/netlist_check.hpp"
#include "check/network_check.hpp"
#include "nn/parser.hpp"
#include "spice/import.hpp"

namespace mnsim::check {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void check_deck_text(const std::string& path, const std::string& text,
                     DiagnosticList& out) {
  spice::Netlist netlist;
  try {
    netlist = spice::import_spice(text);
  } catch (const ParseError& e) {
    Diagnostic d = e.diagnostic();
    if (d.file.empty()) d.file = path;
    out.add(std::move(d));
    return;
  } catch (const std::exception& e) {
    out.emit("MN-SPI-008", Severity::kError, e.what()).file = path;
    return;
  }
  DiagnosticList structural = check_netlist(netlist);
  structural.set_file(path);
  out.merge(std::move(structural));
}

void check_network_text(const std::string& path, const util::Config& cfg,
                        DiagnosticList& out) {
  DiagnosticList registry = check_network_description(cfg);
  registry.set_file(path);
  out.merge(std::move(registry));

  nn::Network network;
  try {
    network = nn::parse_network(cfg);
  } catch (const std::exception& e) {
    // Value-level parse failures (bad kind spelling, layer gaps, missing
    // keys). Skip the bridge when the registry pass already explained the
    // problem more precisely.
    if (!out.has_errors())
      out.emit("MN-CFG-003", Severity::kError, e.what()).file = path;
    return;
  }
  DiagnosticList structural = check_network(network);
  structural.set_file(path);
  out.merge(std::move(structural));
}

}  // namespace

InputKind detect_input_kind(const std::string& path, const std::string& text) {
  if (ends_with(path, ".sp") || ends_with(path, ".cir") ||
      ends_with(path, ".spice")) {
    return InputKind::kSpiceDeck;
  }
  if (text.find("[network]") != std::string::npos ||
      text.find("[layer") != std::string::npos) {
    return InputKind::kNetwork;
  }
  return InputKind::kAcceleratorConfig;
}

DiagnosticList check_file(const std::string& path,
                          const CheckOptions& options) {
  DiagnosticList out;
  std::ifstream f(path);
  if (!f) {
    out.emit("MN-CHK-001", Severity::kError, "cannot open input file").file =
        path;
    return out;
  }
  std::ostringstream os;
  os << f.rdbuf();
  const std::string text = os.str();

  InputKind kind = options.kind;
  if (kind == InputKind::kAutoDetect) kind = detect_input_kind(path, text);

  if (kind == InputKind::kSpiceDeck) {
    check_deck_text(path, text, out);
  } else {
    util::Config cfg;
    try {
      cfg = util::Config::parse(text);
      cfg.set_source(path);
    } catch (const std::exception& e) {
      out.emit("MN-CFG-003", Severity::kError, e.what()).file = path;
      if (options.warnings_as_errors) out.promote_warnings();
      return out;
    }
    if (kind == InputKind::kNetwork) {
      check_network_text(path, cfg, out);
    } else {
      DiagnosticList cfg_diags = check_accelerator_config(cfg);
      cfg_diags.set_file(path);
      out.merge(std::move(cfg_diags));
    }
  }
  if (options.warnings_as_errors) out.promote_warnings();
  return out;
}

DiagnosticList check_system(const nn::Network& network,
                            const arch::AcceleratorConfig& cfg) {
  DiagnosticList out;
  out.merge(check_network(network));
  // Mapping feasibility only makes sense over a structurally sound
  // network; a broken shape chain would cascade into mapper noise.
  if (!out.has_errors()) out.merge(check_mapping(network, cfg));
  out.merge(check_config_consistency(cfg));
  return out;
}

}  // namespace mnsim::check
