#include "check/diagnostic.hpp"

#include <sstream>

namespace mnsim::check {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  const bool has_file = !file.empty();
  if (has_file) {
    os << file;
    if (line > 0) os << ":" << line;
  } else if (!location.empty()) {
    os << location;
  } else {
    os << "mnsim";
  }
  os << ": " << severity_name(severity) << ": " << message;
  if (has_file && !location.empty()) os << " (" << location << ")";
  if (!code.empty()) os << " [" << code << "]";
  if (!hint.empty()) {
    os << "\n";
    if (has_file) {
      os << file;
      if (line > 0) os << ":" << line;
      os << ": ";
    }
    os << "note: " << hint;
  }
  return os.str();
}

Diagnostic& DiagnosticList::emit(std::string code, Severity severity,
                                 std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = severity;
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

void DiagnosticList::merge(DiagnosticList other) {
  for (auto& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

std::size_t DiagnosticList::error_count() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t DiagnosticList::warning_count() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_)
    if (d.severity == Severity::kWarning) ++n;
  return n;
}

bool DiagnosticList::has_code(const std::string& code) const {
  for (const auto& d : diagnostics_)
    if (d.code == code) return true;
  return false;
}

void DiagnosticList::promote_warnings() {
  for (auto& d : diagnostics_)
    if (d.severity == Severity::kWarning) d.severity = Severity::kError;
}

void DiagnosticList::set_file(const std::string& file) {
  for (auto& d : diagnostics_)
    if (d.file.empty()) d.file = file;
}

std::string DiagnosticList::summary() const {
  const std::size_t errors = error_count();
  const std::size_t warnings = warning_count();
  std::ostringstream os;
  if (errors > 0)
    os << errors << (errors == 1 ? " error" : " errors");
  if (warnings > 0) {
    if (errors > 0) os << ", ";
    os << warnings << (warnings == 1 ? " warning" : " warnings");
  }
  if (errors == 0 && warnings == 0) os << "no problems";
  return os.str();
}

std::string DiagnosticList::render_text() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << d.render() << "\n";
  if (!diagnostics_.empty()) os << summary() << " generated.\n";
  return os.str();
}

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out + "\"";
}

}  // namespace

std::string DiagnosticList::render_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const auto& d = diagnostics_[i];
    os << "  {\"code\": " << json_quote(d.code)
       << ", \"severity\": " << json_quote(severity_name(d.severity))
       << ", \"message\": " << json_quote(d.message)
       << ", \"file\": " << json_quote(d.file) << ", \"line\": " << d.line
       << ", \"location\": " << json_quote(d.location)
       << ", \"hint\": " << json_quote(d.hint) << "}"
       << (i + 1 < diagnostics_.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

namespace {

std::string check_error_message(const DiagnosticList& diagnostics) {
  std::ostringstream os;
  os << "pre-flight check failed (" << diagnostics.summary() << ")";
  for (const auto& d : diagnostics)
    if (d.severity == Severity::kError) {
      os << ": " << d.message << " [" << d.code << "]";
      break;  // headline the first error; the full list rides along
    }
  return os.str();
}

}  // namespace

CheckError::CheckError(DiagnosticList diagnostics)
    : std::runtime_error(check_error_message(diagnostics)),
      diagnostics_(std::move(diagnostics)) {}

ParseError::ParseError(Diagnostic diagnostic)
    : std::runtime_error(diagnostic.render()),
      diagnostic_(std::move(diagnostic)) {}

}  // namespace mnsim::check
