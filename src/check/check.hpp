// `mnsim check` driver — one entry per input file and one per in-memory
// system (network + configuration), feeding the family-specific passes
// in netlist_check / config_check / network_check.
//
// check_file classifies an input by extension / content, parses it with
// the regular loaders (bridging their exceptions into diagnostics rather
// than aborting the whole run), and runs every analysis that applies.
// check_system is the pre-flight used by simulate_accelerator and
// dse::explore: shape chain, mapping feasibility and configuration
// consistency, all without solving anything.
#pragma once

#include <string>

#include "arch/params.hpp"
#include "check/diagnostic.hpp"
#include "nn/network.hpp"

namespace mnsim::check {

enum class InputKind {
  kAutoDetect,
  kAcceleratorConfig,  // INI with Table-I keys ([fault]/[solver]/... allowed)
  kNetwork,            // INI with [network]/[layerN] sections
  kSpiceDeck,          // exported .sp/.cir deck
};

struct CheckOptions {
  InputKind kind = InputKind::kAutoDetect;
  // Promote every warning to an error (CLI --werror, [check]
  // Warnings_As_Errors).
  bool warnings_as_errors = false;
};

// Classify a file by extension (.sp/.cir/.spice -> deck) then content
// ("[network]" or "[layer" -> network description, otherwise accelerator
// config). Exposed for the CLI's reporting.
[[nodiscard]] InputKind detect_input_kind(const std::string& path,
                                          const std::string& text);

// Full analysis of one input file. I/O and parse failures surface as
// diagnostics (MN-SPI-*, MN-CFG-003, MN-CHK-001), never as exceptions.
[[nodiscard]] DiagnosticList check_file(const std::string& path,
                                        const CheckOptions& options = {});

// Pre-flight over an in-memory system: network structure, mapping
// feasibility against `cfg`, and configuration consistency.
[[nodiscard]] DiagnosticList check_system(const nn::Network& network,
                                          const arch::AcceleratorConfig& cfg);

}  // namespace mnsim::check
