#include "check/config_check.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "tech/cmos_tech.hpp"
#include "tech/interconnect.hpp"
#include "tech/memristor.hpp"
#include "util/units.hpp"

namespace mnsim::check {

namespace {

// ---- key registry -----------------------------------------------------------

// Section-qualified keys AcceleratorConfig::from_config consumes (bare =
// no section). Keep in sync with arch/params.cpp; the unread-key pass
// (MN-CFG-006) catches drift dynamically.
const std::vector<std::string>& accelerator_keys() {
  static const std::vector<std::string> keys = {
      "Interface_Number", "Crossbar_Size", "Pooling_Size", "Weight_Polarity",
      "CMOS_Tech", "Cell_Type", "Memristor_Model", "Interconnect_Tech",
      "Parallelism_Degree", "Resistance_Range", "Output_Bits",
      "Sense_Resistance", "Device_Sigma", "Pipelined",
      "fault.Stuck_At_0_Rate", "fault.Stuck_At_1_Rate",
      "fault.Wordline_Defect_Rate", "fault.Bitline_Defect_Rate",
      "fault.Retention_Time", "fault.Seed", "fault.Circuit_Check",
      "fault.Circuit_Check_Size",
      "solver.CG_Tolerance", "solver.CG_Max_Iterations",
      "solver.Allow_Fallback", "solver.Structured",
      "parallel.Threads",
      "check.Enabled", "check.Warnings_As_Errors",
      "check.Wire_Drop_Warning",
      "trace.Enabled", "trace.Output", "trace.Metrics",
      "sweep.Checkpoint", "sweep.Shard_Index", "sweep.Shard_Count",
      "sweep.Resume", "sweep.Point_Deadline_Ms", "sweep.Max_Attempts",
      "cycle.Enabled", "cycle.Dataflow", "cycle.Fill_Policy",
      "cycle.Ifmap_KB", "cycle.Filter_KB", "cycle.Ofmap_KB",
      "cycle.Bandwidth_GBps", "cycle.Clock_GHz", "cycle.Max_Events",
  };
  return keys;
}

const std::vector<std::string>& accelerator_sections() {
  static const std::vector<std::string> sections = {
      "fault", "solver", "parallel", "check", "trace", "sweep", "cycle"};
  return sections;
}

std::pair<std::string, std::string> split_key(const std::string& key) {
  const auto dot = key.find('.');
  if (dot == std::string::npos) return {"", key};
  return {key.substr(0, dot), key.substr(dot + 1)};
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const bool same =
          std::tolower(static_cast<unsigned char>(a[i - 1])) ==
          std::tolower(static_cast<unsigned char>(b[j - 1]));
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + (same ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string nearest_key(const std::string& key,
                        const std::vector<std::string>& known) {
  std::string best;
  std::size_t best_distance = 0;
  for (const auto& candidate : known) {
    const std::size_t d = edit_distance(key, candidate);
    if (best.empty() || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  // Only suggest plausible typos: within a third of the key's length.
  const std::size_t budget = std::max<std::size_t>(1, key.size() / 3);
  return best_distance <= budget ? best : std::string();
}

namespace {

void stamp(Diagnostic& d, const util::Config& cfg, const std::string& key) {
  d.file = cfg.source();
  d.line = cfg.line_of(key);
  d.location = key;
}

// Unknown-key / unknown-section pass against a registry. Returns the set
// of keys reported, so later passes can avoid double-reporting.
std::set<std::string> registry_pass(const util::Config& cfg,
                                    const std::vector<std::string>& keys,
                                    const std::vector<std::string>& sections,
                                    DiagnosticList& out) {
  std::set<std::string> reported;
  std::set<std::string> unknown_sections;
  for (const auto& [key, value] : cfg.entries()) {
    (void)value;
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    const auto [section, bare] = split_key(key);
    const bool known_section =
        section.empty() ||
        std::find(sections.begin(), sections.end(), section) !=
            sections.end();
    if (!known_section) {
      // Report the foreign section once; its keys are not typos of ours.
      if (unknown_sections.insert(section).second) {
        auto& d = out.emit("MN-CFG-002", Severity::kWarning,
                           "unknown section [" + section + "]");
        stamp(d, cfg, key);
        d.location = "[" + section + "]";
        const std::string near = nearest_key(section, sections);
        if (!near.empty()) d.hint = "did you mean [" + near + "]?";
      }
      reported.insert(key);
      continue;
    }
    auto& d = out.emit("MN-CFG-001", Severity::kError,
                       "unknown key '" + bare + "'" +
                           (section.empty()
                                ? std::string()
                                : " in section [" + section + "]"));
    stamp(d, cfg, key);
    const std::string near = nearest_key(key, keys);
    if (!near.empty()) {
      const auto [near_section, near_bare] = split_key(near);
      d.hint = near_section == section
                   ? "did you mean '" + near_bare + "'?"
                   : "did you mean '" + near_bare + "' in section [" +
                         near_section + "]?";
    }
    reported.insert(key);
  }
  return reported;
}

// ---- per-key value validation ----------------------------------------------

void value_error(DiagnosticList& out, const util::Config& cfg,
                 const std::string& key, const std::string& message,
                 std::string hint = {}) {
  auto& d = out.emit("MN-CFG-003", Severity::kError, message);
  stamp(d, cfg, key);
  d.hint = std::move(hint);
}

// Runs `get` and converts a ConfigError (bad type) into MN-CFG-003.
template <typename Get>
bool typed(DiagnosticList& out, const util::Config& cfg,
           const std::string& key, Get&& get) {
  try {
    get();
    return true;
  } catch (const util::ConfigError& e) {
    value_error(out, cfg, key, e.what());
    return false;
  }
}

void int_range(DiagnosticList& out, const util::Config& cfg,
               const std::string& key, long min, long max) {
  if (!cfg.has(key)) return;
  typed(out, cfg, key, [&] {
    const long v = cfg.get_int(key);
    if (v < min || v > max)
      value_error(out, cfg, key,
                  "'" + key + "' = " + std::to_string(v) +
                      " outside the supported range [" +
                      std::to_string(min) + ", " + std::to_string(max) +
                      "]");
  });
}

void double_range(DiagnosticList& out, const util::Config& cfg,
                  const std::string& key, double min, double max) {
  if (!cfg.has(key)) return;
  typed(out, cfg, key, [&] {
    const double v = cfg.get_double(key);
    if (!(v >= min) || !(v <= max))
      value_error(out, cfg, key,
                  "'" + key + "' = " + std::to_string(v) +
                      " outside the supported range [" +
                      std::to_string(min) + ", " + std::to_string(max) +
                      "]");
  });
}

void bool_key(DiagnosticList& out, const util::Config& cfg,
              const std::string& key) {
  if (!cfg.has(key)) return;
  typed(out, cfg, key, [&] { (void)cfg.get_bool(key); });
}

void accelerator_values(const util::Config& cfg, DiagnosticList& out) {
  if (cfg.has("Crossbar_Size")) {
    typed(out, cfg, "Crossbar_Size", [&] {
      const long v = cfg.get_int("Crossbar_Size");
      if (v < 2 || (v & (v - 1)) != 0) {
        long pow2 = 2;
        while (pow2 < v && pow2 < (1L << 20)) pow2 <<= 1;
        value_error(out, cfg, "Crossbar_Size",
                    "'Crossbar_Size' = " + std::to_string(v) +
                        " must be a power of two >= 2",
                    "nearest supported size: " + std::to_string(pow2));
      }
    });
  }
  if (cfg.has("Interface_Number")) {
    typed(out, cfg, "Interface_Number", [&] {
      const auto v = cfg.get_int_list("Interface_Number");
      if (v.size() != 2 || v[0] <= 0 || v[1] <= 0)
        value_error(out, cfg, "Interface_Number",
                    "'Interface_Number' needs two positive entries "
                    "[in, out]");
    });
  }
  if (cfg.has("Resistance_Range")) {
    typed(out, cfg, "Resistance_Range", [&] {
      const auto v = cfg.get_list("Resistance_Range");
      if (v.size() != 2 || !(v[0] > 0) || !(v[1] > v[0])) {
        value_error(out, cfg, "Resistance_Range",
                    "'Resistance_Range' needs [min, max] with 0 < min < "
                    "max (ohms)");
      } else {
        using namespace mnsim::units;
        const Ohms r_min{v[0]};
        const Ohms r_max{v[1]};
        if (r_min < Ohms{1.0} || r_max > Ohms{1e9}) {
          auto& d = out.emit(
              "MN-CFG-005", Severity::kWarning,
              "'Resistance_Range' = [" + std::to_string(v[0]) + ", " +
                  std::to_string(v[1]) +
                  "] ohm is outside the plausible memristor band "
                  "[1, 1e9] ohm");
          stamp(d, cfg, "Resistance_Range");
          d.hint = "values are ohms, not kilo-ohms; 500k is written 500e3";
        }
      }
    });
  }
  if (cfg.has("Cell_Type")) {
    typed(out, cfg, "Cell_Type", [&] {
      const std::string v = cfg.get_string("Cell_Type");
      if (v != "1T1R" && v != "0T1R")
        value_error(out, cfg, "Cell_Type",
                    "'Cell_Type' must be 1T1R or 0T1R, got '" + v + "'");
    });
  }
  if (cfg.has("Memristor_Model")) {
    typed(out, cfg, "Memristor_Model", [&] {
      const std::string v = cfg.get_string("Memristor_Model");
      try {
        (void)tech::memristor_by_name(v);
      } catch (const std::invalid_argument&) {
        value_error(out, cfg, "Memristor_Model",
                    "unknown device model '" + v + "'",
                    "supported models: RRAM, PCM, STT-MRAM");
      }
    });
  }
  int_range(out, cfg, "Pooling_Size", 1, 64);
  int_range(out, cfg, "Weight_Polarity", 1, 2);
  int_range(out, cfg, "CMOS_Tech", 16, 250);
  int_range(out, cfg, "Interconnect_Tech", 10, 180);
  int_range(out, cfg, "Parallelism_Degree", 0, 1L << 20);
  int_range(out, cfg, "Output_Bits", 1, 14);
  double_range(out, cfg, "Sense_Resistance", 0.0, 1e6);
  double_range(out, cfg, "Device_Sigma", 0.0, 0.3);
  bool_key(out, cfg, "Pipelined");
  double_range(out, cfg, "fault.Stuck_At_0_Rate", 0.0, 1.0);
  double_range(out, cfg, "fault.Stuck_At_1_Rate", 0.0, 1.0);
  double_range(out, cfg, "fault.Wordline_Defect_Rate", 0.0, 1.0);
  double_range(out, cfg, "fault.Bitline_Defect_Rate", 0.0, 1.0);
  double_range(out, cfg, "fault.Retention_Time", 0.0, 1e12);
  bool_key(out, cfg, "fault.Circuit_Check");
  int_range(out, cfg, "fault.Circuit_Check_Size", 2, 1 << 14);
  if (cfg.has("solver.CG_Tolerance")) {
    typed(out, cfg, "solver.CG_Tolerance", [&] {
      if (!(cfg.get_double("solver.CG_Tolerance") > 0))
        value_error(out, cfg, "solver.CG_Tolerance",
                    "'solver.CG_Tolerance' must be positive");
    });
  }
  int_range(out, cfg, "solver.CG_Max_Iterations", 0, 1L << 30);
  bool_key(out, cfg, "solver.Allow_Fallback");
  bool_key(out, cfg, "solver.Structured");
  int_range(out, cfg, "parallel.Threads", 0, 4096);
  bool_key(out, cfg, "check.Enabled");
  bool_key(out, cfg, "check.Warnings_As_Errors");
  double_range(out, cfg, "check.Wire_Drop_Warning", 0.0, 1.0);
  bool_key(out, cfg, "trace.Enabled");
  bool_key(out, cfg, "trace.Metrics");
  int_range(out, cfg, "sweep.Shard_Index", 0, 1 << 20);
  int_range(out, cfg, "sweep.Shard_Count", 1, 1 << 20);
  bool_key(out, cfg, "sweep.Resume");
  double_range(out, cfg, "sweep.Point_Deadline_Ms", 0.0, 1e9);
  int_range(out, cfg, "sweep.Max_Attempts", 1, 100);
  bool_key(out, cfg, "cycle.Enabled");
  if (cfg.has("cycle.Dataflow")) {
    typed(out, cfg, "cycle.Dataflow", [&] {
      const std::string v = cfg.get_string("cycle.Dataflow");
      if (!arch::parse_dataflow(v))
        value_error(out, cfg, "cycle.Dataflow",
                    "unknown dataflow '" + v + "'",
                    "supported: weight_stationary, input_stationary, "
                    "output_stationary (or ws/is/os)");
    });
  }
  if (cfg.has("cycle.Fill_Policy")) {
    typed(out, cfg, "cycle.Fill_Policy", [&] {
      const std::string v = cfg.get_string("cycle.Fill_Policy");
      if (!arch::parse_fill_policy(v))
        value_error(out, cfg, "cycle.Fill_Policy",
                    "unknown fill policy '" + v + "'",
                    "supported: prefetch, demand");
    });
  }
  double_range(out, cfg, "cycle.Ifmap_KB", 1e-3, 1e6);
  double_range(out, cfg, "cycle.Filter_KB", 1e-3, 1e6);
  double_range(out, cfg, "cycle.Ofmap_KB", 1e-3, 1e6);
  double_range(out, cfg, "cycle.Bandwidth_GBps", 1e-6, 1e6);
  double_range(out, cfg, "cycle.Clock_GHz", 0.0, 1e3);
  int_range(out, cfg, "cycle.Max_Events", 0, 1L << 30);
  if (cfg.has("sweep.Shard_Index") && cfg.has("sweep.Shard_Count")) {
    typed(out, cfg, "sweep.Shard_Index", [&] {
      const long index = cfg.get_int("sweep.Shard_Index");
      const long count = cfg.get_int("sweep.Shard_Count");
      if (count >= 1 && index >= count)
        value_error(out, cfg, "sweep.Shard_Index",
                    "'sweep.Shard_Index' must be below 'sweep.Shard_Count'");
    });
  }
}

}  // namespace

DiagnosticList check_config_consistency(const arch::AcceleratorConfig& cfg) {
  using namespace mnsim::units;
  DiagnosticList out;

  if (cfg.parallelism > cfg.crossbar_size) {
    auto& d = out.emit(
        "MN-CFG-004", Severity::kWarning,
        "Parallelism_Degree = " + std::to_string(cfg.parallelism) +
            " exceeds Crossbar_Size = " + std::to_string(cfg.crossbar_size) +
            "; the extra read circuits are never used");
    d.location = "Parallelism_Degree";
    d.hint = "0 means one read circuit per column (all parallel)";
  }

  if (cfg.fault.circuit_check &&
      cfg.fault.circuit_check_size > cfg.crossbar_size) {
    auto& d = out.emit(
        "MN-CFG-004", Severity::kError,
        "fault.Circuit_Check_Size = " +
            std::to_string(cfg.fault.circuit_check_size) +
            " references cells outside the " +
            std::to_string(cfg.crossbar_size) + "x" +
            std::to_string(cfg.crossbar_size) + " crossbar");
    d.location = "fault.Circuit_Check_Size";
    d.hint = "the validation sub-array must fit the configured array";
  }

  // Read-circuit quantization vs. what a single cell stores: an ADC with
  // fewer levels than the cell throws away programmed precision.
  const auto device = cfg.device();
  if (cfg.output_bits < device.level_bits) {
    auto& d = out.emit(
        "MN-CFG-004", Severity::kWarning,
        "Output_Bits = " + std::to_string(cfg.output_bits) + " (" +
            std::to_string(1 << cfg.output_bits) +
            " ADC levels) quantizes below the cell's " +
            std::to_string(device.level_bits) + "-bit level count");
    d.location = "Output_Bits";
    d.hint = "raise Output_Bits or pick a coarser Memristor_Model";
  }

  // Wire-drop plausibility through the Quantity layer: total wire
  // resistance of the worst-case column against the low-resistance
  // state. Beyond the threshold the Eq. 9-11 error model predicts the
  // array is dominated by IR drop, not by the programmed weights.
  const Ohms segment =
      tech::interconnect_tech(cfg.interconnect_node_nm).segment_resistance;
  const Ohms wire_total = segment * static_cast<double>(cfg.crossbar_size);
  const Ohms r_min{cfg.resistance_min};
  const double drop_fraction = wire_total / r_min;  // dimensionless ratio
  if (drop_fraction > cfg.check_wire_drop_warning) {
    auto& d = out.emit(
        "MN-CFG-005", Severity::kWarning,
        "worst-case column wire resistance (" +
            std::to_string(wire_total.value()) + " ohm at " +
            std::to_string(cfg.interconnect_node_nm) + " nm x " +
            std::to_string(cfg.crossbar_size) + " cells) is " +
            std::to_string(100.0 * drop_fraction) +
            "% of R_min; IR drop will dominate the computing error");
    d.location = "Crossbar_Size";
    d.hint =
        "shrink Crossbar_Size, pick a finer Interconnect_Tech, or raise "
        "[check] Wire_Drop_Warning to silence";
  }

  const Ohms sense{cfg.sense_resistance};
  if (sense >= r_min * 0.5) {
    auto& d = out.emit(
        "MN-CFG-005", Severity::kWarning,
        "Sense_Resistance = " + std::to_string(cfg.sense_resistance) +
            " ohm is comparable to R_min = " +
            std::to_string(cfg.resistance_min) +
            " ohm; the column load distorts the read voltage");
    d.location = "Sense_Resistance";
    d.hint = "keep the sense load well below the low-resistance state";
  }

  return out;
}

void check_unread_keys(const util::Config& cfg, DiagnosticList& out) {
  for (const auto& key : cfg.unread_keys()) {
    auto& d = out.emit("MN-CFG-006", Severity::kWarning,
                       "key '" + key + "' was parsed but never read by any "
                       "consumer");
    stamp(d, cfg, key);
    const std::string near = nearest_key(key, accelerator_keys());
    if (!near.empty() && near != key)
      d.hint = "possible typo of '" + near + "'";
  }
}

DiagnosticList check_accelerator_config(const util::Config& cfg) {
  DiagnosticList out;

  // Consume the config exactly as the runtime consumer does, then
  // snapshot what it never probed (the MN-CFG-006 source of truth).
  bool built_ok = false;
  std::string build_error;
  arch::AcceleratorConfig built;
  try {
    built = arch::AcceleratorConfig::from_config(cfg);
    built_ok = true;
  } catch (const std::exception& e) {
    build_error = e.what();
  }
  std::vector<std::string> unread = cfg.unread_keys();

  const std::set<std::string> reported =
      registry_pass(cfg, accelerator_keys(), accelerator_sections(), out);
  accelerator_values(cfg, out);

  // The bridge error only adds information when the targeted passes
  // missed the problem (e.g. a cross-field throw inside validate()).
  if (!built_ok && !out.has_errors()) {
    auto& d = out.emit("MN-CFG-003", Severity::kError, build_error);
    d.file = cfg.source();
  }

  if (built_ok) {
    for (const auto& key : unread) {
      if (reported.count(key) != 0) continue;  // already an unknown-key error
      auto& d = out.emit("MN-CFG-006", Severity::kWarning,
                         "key '" + key + "' was parsed but never read by "
                         "any consumer");
      stamp(d, cfg, key);
    }
    auto consistency = check_config_consistency(built);
    consistency.set_file(cfg.source());
    out.merge(std::move(consistency));
  }
  return out;
}

namespace {

const std::vector<std::string>& network_section_keys() {
  static const std::vector<std::string> keys = {"name", "type", "input_bits",
                                                "weight_bits"};
  return keys;
}

const std::vector<std::string>& layer_keys_for(const std::string& kind) {
  static const std::vector<std::string> fc = {"kind", "name", "in", "out",
                                              "bias"};
  static const std::vector<std::string> conv = {
      "kind",     "name",      "in_channels", "out_channels",
      "kernel",   "in_width",  "in_height",   "padding",
      "stride"};
  static const std::vector<std::string> pool = {"kind", "name", "window"};
  static const std::vector<std::string> any = {
      "kind",     "name",      "in",          "out",     "bias",
      "in_channels", "out_channels", "kernel", "in_width", "in_height",
      "padding",  "stride",    "window"};
  if (kind == "fc") return fc;
  if (kind == "conv") return conv;
  if (kind == "pool") return pool;
  return any;
}

bool is_layer_section(const std::string& section) {
  if (section.rfind("layer", 0) != 0 || section.size() <= 5) return false;
  return std::all_of(section.begin() + 5, section.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
  });
}

}  // namespace

DiagnosticList check_network_description(const util::Config& cfg) {
  DiagnosticList out;
  for (const auto& [key, value] : cfg.entries()) {
    (void)value;
    const auto [section, bare] = split_key(key);
    if (section == "network") {
      const auto& known = network_section_keys();
      if (std::find(known.begin(), known.end(), bare) == known.end()) {
        auto& d = out.emit("MN-CFG-001", Severity::kError,
                           "unknown key '" + bare + "' in section [network]");
        stamp(d, cfg, key);
        const std::string near = nearest_key(bare, known);
        if (!near.empty()) d.hint = "did you mean '" + near + "'?";
      }
      continue;
    }
    if (is_layer_section(section)) {
      const std::string kind =
          cfg.has(section + ".kind") ? cfg.get_string(section + ".kind")
                                     : std::string();
      const auto& known = layer_keys_for(kind);
      if (std::find(known.begin(), known.end(), bare) == known.end()) {
        auto& d = out.emit(
            "MN-CFG-001", Severity::kError,
            "unknown key '" + bare + "' in section [" + section + "]" +
                (kind.empty() ? std::string()
                              : " (layer kind '" + kind + "')"));
        stamp(d, cfg, key);
        const std::string near = nearest_key(bare, known);
        if (!near.empty()) d.hint = "did you mean '" + near + "'?";
      }
      continue;
    }
    auto& d = out.emit("MN-CFG-002", Severity::kWarning,
                       section.empty()
                           ? "key '" + bare + "' outside any section"
                           : "unknown section [" + section + "]");
    stamp(d, cfg, key);
    if (!section.empty()) d.location = "[" + section + "]";
    if (is_layer_section(bare) || section.empty())
      d.hint = "network descriptions use [network] and [layerN] sections";
  }
  return out;
}

}  // namespace mnsim::check
