// Typed diagnostics for the semantic pre-flight analyzer (`mnsim check`).
//
// Every input problem the analyzer can detect — netlist structure, config
// cross-field validation, network/mapping feasibility — is reported as a
// Diagnostic with a stable code (MN-NET-001, MN-CFG-003, ...), a severity,
// an optional file/line or structural location, and an optional fix-it
// hint. Diagnostics render in GCC-style text (`file:line: error: message
// [code]`) and machine-readable JSON, and travel through exceptions
// (CheckError / ParseError) so solvers can refuse-with-diagnosis instead
// of failing numerically. The full catalogue, with one example trigger
// and remedy per code, lives in docs/DIAGNOSTICS.md; tools/lint.py
// enforces that every code constructed here is catalogued there.
//
// This header is a dependency leaf (std only) so any layer — spice, arch,
// dse, sim — can carry diagnostics without include cycles.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mnsim::check {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity severity);

struct Diagnostic {
  std::string code;              // stable identifier, e.g. "MN-NET-001"
  Severity severity = Severity::kError;
  std::string message;
  std::string file;              // input file when known; empty otherwise
  int line = 0;                  // 1-based; 0 = no line information
  std::string location;          // structural location ("node 7", "[layer3]")
  std::string hint;              // optional fix-it suggestion

  // GCC-style one-liner: `file:line: severity: message [code]`, followed
  // by a `note:` line when a hint is present.
  [[nodiscard]] std::string render() const;
};

class DiagnosticList {
 public:
  void add(Diagnostic diagnostic) {
    diagnostics_.push_back(std::move(diagnostic));
  }
  // Convenience emitter; returns the stored record for optional
  // follow-up (location / hint / file).
  Diagnostic& emit(std::string code, Severity severity, std::string message);
  void merge(DiagnosticList other);

  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const { return diagnostics_.size(); }
  [[nodiscard]] const std::vector<Diagnostic>& items() const {
    return diagnostics_;
  }
  [[nodiscard]] std::vector<Diagnostic> take() {
    return std::move(diagnostics_);
  }
  [[nodiscard]] auto begin() const { return diagnostics_.begin(); }
  [[nodiscard]] auto end() const { return diagnostics_.end(); }

  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] bool has_errors() const { return error_count() > 0; }
  [[nodiscard]] bool has_code(const std::string& code) const;

  // [check] Warnings_As_Errors: every warning becomes an error.
  void promote_warnings();
  // Stamps `file` on every diagnostic that has none (used after checking
  // an in-memory object parsed from a known file).
  void set_file(const std::string& file);

  // All diagnostics, one render() per entry, plus a trailing summary
  // line when non-empty ("2 errors, 1 warning generated.").
  [[nodiscard]] std::string render_text() const;
  // JSON array of {code, severity, message, file, line, location, hint}.
  [[nodiscard]] std::string render_json() const;
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

// Carries a whole analysis result through an exception: thrown by the
// pre-flight hooks (spice::solve_dc, arch::simulate_accelerator,
// arch::simulate_trace, dse::explore) when an input fails statically.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(DiagnosticList diagnostics);
  [[nodiscard]] const DiagnosticList& diagnostics() const {
    return diagnostics_;
  }

 private:
  DiagnosticList diagnostics_;
};

// A single-diagnostic parse failure (SPICE import, config files): keeps
// the std::runtime_error contract of the historical throws while
// carrying code + file:line for uniform rendering.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(Diagnostic diagnostic);
  [[nodiscard]] const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

}  // namespace mnsim::check
