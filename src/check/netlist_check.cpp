#include "check/netlist_check.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace mnsim::check {

namespace {

using spice::kGround;
using spice::Netlist;
using spice::NodeId;

std::string node_name(NodeId n) {
  return n == kGround ? std::string("ground") : "n" + std::to_string(n);
}

std::string element_label(const char* kind, const std::string& name,
                          std::size_t index) {
  std::string label = kind;
  label += " ";
  label += name.empty() ? "#" + std::to_string(index) : "'" + name + "'";
  return label;
}

bool node_ok(const Netlist& nl, NodeId n) {
  return n >= 0 && n <= nl.node_count();
}

// Union-find over node ids.
class DisjointSet {
 public:
  explicit DisjointSet(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

// Invariant checks shared by check_netlist and the validate() wrapper.
void invariants(const Netlist& nl, DiagnosticList& out, bool warnings) {
  auto bad_node = [&](const std::string& label, NodeId n) {
    auto& d = out.emit("MN-NET-006", Severity::kError,
                       label + " references unallocated node id " +
                           std::to_string(n));
    d.location = label;
    d.hint = "allocate nodes with Netlist::add_node() before wiring them";
  };
  auto shorted = [&](const std::string& label, NodeId n) {
    auto& d = out.emit("MN-NET-008", Severity::kError,
                       label + " connects node " + node_name(n) +
                           " to itself");
    d.location = label;
  };

  // Names only need to be unique within a kind: a deck renders them with
  // a kind prefix (R1 vs V1), so cross-kind reuse is not ambiguous.
  std::map<std::string, int> name_uses;
  auto count_name = [&](const char* kind, const std::string& name) {
    if (!name.empty()) ++name_uses[std::string(kind) + " '" + name + "'"];
  };

  for (std::size_t i = 0; i < nl.resistors().size(); ++i) {
    const auto& r = nl.resistors()[i];
    const std::string label = element_label("resistor", r.name, i);
    if (!node_ok(nl, r.a)) bad_node(label, r.a);
    if (!node_ok(nl, r.b)) bad_node(label, r.b);
    if (node_ok(nl, r.a) && r.a == r.b) shorted(label, r.a);
    if (!(r.ohms > 0.0)) {
      auto& d = out.emit("MN-NET-007", Severity::kError,
                         label + " has non-positive resistance " +
                             std::to_string(r.ohms) + " ohm");
      d.location = label;
      d.hint = "model an ideal short as a small positive resistance";
    }
    count_name("resistor", r.name);
  }
  for (std::size_t i = 0; i < nl.memristors().size(); ++i) {
    const auto& m = nl.memristors()[i];
    const std::string label = element_label("memristor", m.name, i);
    if (!node_ok(nl, m.a)) bad_node(label, m.a);
    if (!node_ok(nl, m.b)) bad_node(label, m.b);
    if (node_ok(nl, m.a) && m.a == m.b) shorted(label, m.a);
    if (!(m.r_state > 0.0)) {
      auto& d = out.emit("MN-NET-007", Severity::kError,
                         label + " has non-positive programmed state " +
                             std::to_string(m.r_state) + " ohm");
      d.location = label;
    }
    count_name("memristor", m.name);
  }
  for (std::size_t i = 0; i < nl.capacitors().size(); ++i) {
    const auto& c = nl.capacitors()[i];
    const std::string label = element_label("capacitor", c.name, i);
    if (!node_ok(nl, c.a)) bad_node(label, c.a);
    if (!node_ok(nl, c.b)) bad_node(label, c.b);
    if (node_ok(nl, c.a) && c.a == c.b) shorted(label, c.a);
    if (!(c.farads > 0.0)) {
      auto& d = out.emit("MN-NET-007", Severity::kError,
                         label + " has non-positive capacitance " +
                             std::to_string(c.farads) + " F");
      d.location = label;
    }
    count_name("capacitor", c.name);
  }

  // Source conflicts: report *which* sources collide on which node.
  std::map<NodeId, std::vector<std::size_t>> pins;
  for (std::size_t i = 0; i < nl.sources().size(); ++i) {
    const auto& s = nl.sources()[i];
    const std::string label = element_label("source", s.name, i);
    if (!node_ok(nl, s.node)) {
      bad_node(label, s.node);
      continue;
    }
    if (s.node == kGround) {
      auto& d = out.emit("MN-NET-009", Severity::kError,
                         label + " pins the ground node");
      d.location = label;
      d.hint = "ground is fixed at 0 V; drive a non-ground node instead";
      continue;
    }
    pins[s.node].push_back(i);
    count_name("source", s.name);
  }
  for (const auto& [node, sources] : pins) {
    if (sources.size() < 2) continue;
    std::string who;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const auto& s = nl.sources()[sources[i]];
      if (i > 0) who += i + 1 == sources.size() ? " and " : ", ";
      who += element_label("source", s.name, sources[i]) + " (" +
             std::to_string(s.volts) + " V)";
    }
    auto& d = out.emit("MN-NET-003", Severity::kError,
                       "node " + node_name(node) +
                           " is pinned by conflicting sources: " + who);
    d.location = "node " + node_name(node);
    d.hint = "keep exactly one grounded source per driven node";
  }

  if (warnings) {
    for (const auto& [name, uses] : name_uses) {
      if (uses > 1) {
        auto& d = out.emit("MN-NET-010", Severity::kWarning,
                           name + " name is used " + std::to_string(uses) +
                               " times");
        d.hint = "duplicate names make exported decks ambiguous";
      }
    }
  }
}

}  // namespace

DiagnosticList check_netlist_invariants(const Netlist& nl) {
  DiagnosticList out;
  invariants(nl, out, /*warnings=*/false);
  return out;
}

DiagnosticList check_netlist(const Netlist& nl,
                             const NetlistCheckOptions& options) {
  DiagnosticList out;
  invariants(nl, out, options.warnings);
  // Graph passes assume in-range node ids; bail out on invariant errors.
  if (out.has_errors()) return out;

  const int nodes = nl.node_count() + 1;  // index 0 = ground

  // Which nodes any element touches, and which are pinned by a source.
  std::vector<bool> touched(static_cast<std::size_t>(nodes), false);
  std::vector<bool> pinned(static_cast<std::size_t>(nodes), false);
  touched[kGround] = true;
  auto touch = [&](NodeId n) { touched[static_cast<std::size_t>(n)] = true; };
  for (const auto& r : nl.resistors()) {
    touch(r.a);
    touch(r.b);
  }
  for (const auto& m : nl.memristors()) {
    touch(m.a);
    touch(m.b);
  }
  for (const auto& c : nl.capacitors()) {
    touch(c.a);
    touch(c.b);
  }
  for (const auto& s : nl.sources()) {
    touch(s.node);
    pinned[static_cast<std::size_t>(s.node)] = true;
  }

  if (options.connectivity) {
    // DC-conductive connectivity: resistors and memristors conduct,
    // capacitors are open, a source ties its node to ground.
    DisjointSet dsu(nodes);
    for (const auto& r : nl.resistors()) dsu.unite(r.a, r.b);
    for (const auto& m : nl.memristors()) dsu.unite(m.a, m.b);
    for (const auto& s : nl.sources()) dsu.unite(s.node, kGround);
    const int ground_root = dsu.find(kGround);

    for (int n = 1; n < nodes; ++n) {
      if (!touched[static_cast<std::size_t>(n)]) {
        auto& d = out.emit("MN-NET-002", Severity::kError,
                           "node " + node_name(n) +
                               " is allocated but connected to nothing");
        d.location = "node " + node_name(n);
        d.hint = "remove the node or wire an element to it";
      } else if (dsu.find(n) != ground_root) {
        auto& d = out.emit(
            "MN-NET-001", Severity::kError,
            "node " + node_name(n) +
                " has no DC path to ground (floating island: the reduced "
                "conductance matrix is singular there)");
        d.location = "node " + node_name(n);
        d.hint =
            "add a conductive path (resistor/memristor/source) from the "
            "island to ground";
      }
    }
  }

  if (options.structural_rank) {
    // Structural-rank pass over the stamped pattern of the reduced MNA
    // system. The matrix is a grounded Laplacian: row i has a structural
    // diagonal iff node i is touched by at least one conductive element
    // (capacitors do not stamp at DC). A maximum bipartite matching of
    // rows to columns decides structural nonsingularity; with the
    // diagonal-first greedy pass this is O(V + E) for any physical
    // netlist and only falls back to augmenting paths on pathological
    // patterns.
    std::vector<int> unknown_of_node(static_cast<std::size_t>(nodes), -1);
    std::vector<NodeId> node_of_unknown;
    for (int n = 1; n < nodes; ++n) {
      if (!pinned[static_cast<std::size_t>(n)]) {
        unknown_of_node[static_cast<std::size_t>(n)] =
            static_cast<int>(node_of_unknown.size());
        node_of_unknown.push_back(n);
      }
    }
    const int unknowns = static_cast<int>(node_of_unknown.size());
    std::vector<std::vector<int>> pattern(
        static_cast<std::size_t>(unknowns));
    auto stamp_edge = [&](NodeId a, NodeId b) {
      const int ia = unknown_of_node[static_cast<std::size_t>(a)];
      const int ib = unknown_of_node[static_cast<std::size_t>(b)];
      if (ia >= 0) pattern[static_cast<std::size_t>(ia)].push_back(ia);
      if (ib >= 0) pattern[static_cast<std::size_t>(ib)].push_back(ib);
      if (ia >= 0 && ib >= 0) {
        pattern[static_cast<std::size_t>(ia)].push_back(ib);
        pattern[static_cast<std::size_t>(ib)].push_back(ia);
      }
    };
    for (const auto& r : nl.resistors()) stamp_edge(r.a, r.b);
    for (const auto& m : nl.memristors()) stamp_edge(m.a, m.b);

    std::vector<int> match_col(static_cast<std::size_t>(unknowns), -1);
    std::vector<int> match_row(static_cast<std::size_t>(unknowns), -1);
    // Diagonal-first: any node with a conductive element matches itself.
    for (int i = 0; i < unknowns; ++i) {
      for (int j : pattern[static_cast<std::size_t>(i)]) {
        if (j == i) {
          match_row[static_cast<std::size_t>(i)] = i;
          match_col[static_cast<std::size_t>(i)] = i;
          break;
        }
      }
    }
    std::vector<char> visited(static_cast<std::size_t>(unknowns), 0);
    auto augment = [&](auto&& self, int row) -> bool {
      for (int col : pattern[static_cast<std::size_t>(row)]) {
        if (visited[static_cast<std::size_t>(col)]) continue;
        visited[static_cast<std::size_t>(col)] = 1;
        if (match_col[static_cast<std::size_t>(col)] < 0 ||
            self(self, match_col[static_cast<std::size_t>(col)])) {
          match_col[static_cast<std::size_t>(col)] = row;
          match_row[static_cast<std::size_t>(row)] = col;
          return true;
        }
      }
      return false;
    };
    for (int i = 0; i < unknowns; ++i) {
      if (match_row[static_cast<std::size_t>(i)] >= 0) continue;
      std::fill(visited.begin(), visited.end(), 0);
      if (!augment(augment, i)) {
        const NodeId n = node_of_unknown[static_cast<std::size_t>(i)];
        // Skip nodes already reported as isolated: same root cause.
        if (!touched[static_cast<std::size_t>(n)]) continue;
        auto& d = out.emit(
            "MN-NET-004", Severity::kError,
            "MNA system is structurally singular at node " + node_name(n) +
                ": no conductive element stamps its row for any values");
        d.location = "node " + node_name(n);
        d.hint =
            "at DC, capacitors are open circuits; give the node a "
            "resistive path or pin it with a source";
      }
    }
  }

  if (options.warnings) {
    // Conditioning plausibility: spread of stamped conductances.
    double g_min = 0.0;
    double g_max = 0.0;
    auto account = [&](double g) {
      if (!(g > 0.0)) return;
      if (g_min == 0.0 || g < g_min) g_min = g;
      if (g > g_max) g_max = g;
    };
    for (const auto& r : nl.resistors()) account(1.0 / r.ohms);
    for (const auto& m : nl.memristors()) account(1.0 / m.r_state);
    if (g_min > 0.0 && g_max / g_min > options.conductance_spread_warning) {
      auto& d = out.emit(
          "MN-NET-005", Severity::kWarning,
          "conductance spread " + std::to_string(g_max / g_min) +
              " exceeds " +
              std::to_string(options.conductance_spread_warning) +
              "; expect an ill-conditioned solve (CG retries or dense "
              "fallback)");
      d.hint = "see docs/ROBUSTNESS.md for the graceful-degradation ladder";
    }
    if (nl.sources().empty() &&
        !(nl.resistors().empty() && nl.memristors().empty())) {
      auto& d = out.emit("MN-NET-011", Severity::kWarning,
                         "netlist has no voltage sources; the DC solution "
                         "is identically zero");
      d.hint = "add a grounded source to drive the network";
    }
  }

  return out;
}

}  // namespace mnsim::check
