#include "check/network_check.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "arch/mapper.hpp"

namespace mnsim::check {

namespace {

std::string layer_label(const nn::Layer& layer, std::size_t index) {
  std::string label = "layer " + std::to_string(index);
  if (!layer.name.empty()) label += " '" + layer.name + "'";
  return label;
}

// Feature-map state threaded through the shape-chain walk. A network is
// either in "spatial" mode (after a conv/pool: channels x width x height)
// or "flat" mode (after an FC: a plain vector).
struct ShapeState {
  bool known = false;
  bool spatial = false;
  long channels = 0;
  long width = 0;
  long height = 0;
  long flat = 0;

  [[nodiscard]] long flattened() const {
    return spatial ? channels * width * height : flat;
  }
};

// Individual-layer validity as diagnostics (the MN-NN-002 family).
// Mirrors nn::Layer::validate() so check_network can report *all*
// problems instead of throwing on the first.
void check_layer_dims(const nn::Layer& l, std::size_t index,
                      DiagnosticList& out) {
  const std::string label = layer_label(l, index);
  switch (l.kind) {
    case nn::LayerKind::kFullyConnected:
      if (l.in_features <= 0 || l.out_features <= 0) {
        out.emit("MN-NN-002", Severity::kError,
                 label + ": fully-connected features must be positive (in=" +
                     std::to_string(l.in_features) +
                     ", out=" + std::to_string(l.out_features) + ")");
      }
      break;
    case nn::LayerKind::kConvolution:
      if (l.in_channels <= 0 || l.out_channels <= 0 || l.kernel <= 0) {
        out.emit("MN-NN-002", Severity::kError,
                 label + ": convolution shape must be positive (in_channels=" +
                     std::to_string(l.in_channels) +
                     ", out_channels=" + std::to_string(l.out_channels) +
                     ", kernel=" + std::to_string(l.kernel) + ")");
        break;
      }
      if (l.stride <= 0) {
        out.emit("MN-NN-002", Severity::kError,
                 label + ": stride must be positive");
        break;
      }
      if (l.in_width < l.kernel - 2 * l.padding ||
          l.in_height < l.kernel - 2 * l.padding) {
        out.emit("MN-NN-002", Severity::kError,
                 label + ": " + std::to_string(l.kernel) + "x" +
                     std::to_string(l.kernel) + " kernel does not fit the " +
                     std::to_string(l.in_width) + "x" +
                     std::to_string(l.in_height) + " input map")
            .hint = "enlarge the input map, shrink the kernel, or add padding";
      }
      break;
    case nn::LayerKind::kPooling:
      if (l.pool_size <= 0) {
        out.emit("MN-NN-002", Severity::kError,
                 label + ": pooling window must be positive");
      }
      break;
  }
}

}  // namespace

DiagnosticList check_network(const nn::Network& network) {
  DiagnosticList out;
  if (network.layers.empty()) {
    out.emit("MN-NN-002", Severity::kError,
             "network '" + network.name + "' has no layers");
    return out;
  }
  if (network.depth() == 0) {
    out.emit("MN-NN-002", Severity::kError,
             "network '" + network.name +
                 "' has no weighted (neuromorphic) layers — nothing maps "
                 "onto crossbars");
  }
  if (network.input_bits < 1 || network.input_bits > 16) {
    out.emit("MN-NN-002", Severity::kError,
             "input_bits = " + std::to_string(network.input_bits) +
             " is outside the supported 1..16 range");
  }
  if (network.weight_bits < 1 || network.weight_bits > 16) {
    out.emit("MN-NN-002", Severity::kError,
             "weight_bits = " + std::to_string(network.weight_bits) +
             " is outside the supported 1..16 range");
  }

  bool dims_ok = true;
  {
    const std::size_t before = out.error_count();
    for (std::size_t i = 0; i < network.layers.size(); ++i)
      check_layer_dims(network.layers[i], i, out);
    dims_ok = out.error_count() == before;
  }
  // The shape chain is meaningless over layers with broken dimensions;
  // report the per-layer problems alone rather than cascade mismatches.
  if (!dims_ok) return out;

  ShapeState state;
  bool seen_weighted = false;
  for (std::size_t i = 0; i < network.layers.size(); ++i) {
    const nn::Layer& l = network.layers[i];
    const std::string label = layer_label(l, i);
    switch (l.kind) {
      case nn::LayerKind::kConvolution: {
        if (state.known) {
          if (state.spatial) {
            if (l.in_channels != state.channels ||
                l.in_width != state.width || l.in_height != state.height) {
              out.emit("MN-NN-001", Severity::kError,
                       label + ": input map " +
                           std::to_string(l.in_channels) + "x" +
                           std::to_string(l.in_width) + "x" +
                           std::to_string(l.in_height) +
                           " does not match the previous layer's output " +
                           std::to_string(state.channels) + "x" +
                           std::to_string(state.width) + "x" +
                           std::to_string(state.height) +
                           " (channels x width x height)");
            }
          } else if (static_cast<long>(l.in_channels) * l.in_width *
                         l.in_height != state.flat) {
            out.emit("MN-NN-001", Severity::kError,
                     label + ": input map holds " +
                         std::to_string(static_cast<long>(l.in_channels) *
                                        l.in_width * l.in_height) +
                         " values but the previous layer produces " +
                         std::to_string(state.flat));
          }
        }
        state.known = true;
        state.spatial = true;
        state.channels = l.out_channels;
        state.width = l.out_width();
        state.height = l.out_height();
        seen_weighted = true;
        break;
      }
      case nn::LayerKind::kFullyConnected: {
        if (state.known && l.in_features != state.flattened()) {
          out.emit("MN-NN-001", Severity::kError,
                   label + ": in = " + std::to_string(l.in_features) +
                       " does not match the previous layer's " +
                       std::to_string(state.flattened()) +
                       " flattened outputs");
        }
        state.known = true;
        state.spatial = false;
        state.flat = l.out_features;
        seen_weighted = true;
        break;
      }
      case nn::LayerKind::kPooling: {
        if (!seen_weighted) {
          out.emit("MN-NN-003", Severity::kError,
                   label + ": pooling before any weighted layer — pooling "
                           "attaches to the preceding computation bank")
              .hint = "move the pooling layer after a conv or fc layer";
          break;
        }
        if (!state.spatial) {
          out.emit("MN-NN-003", Severity::kWarning,
                   label + ": pooling after a fully-connected layer has no "
                           "spatial map to pool");
          break;
        }
        if (l.pool_size > state.width || l.pool_size > state.height) {
          out.emit("MN-NN-003", Severity::kError,
                   label + ": " + std::to_string(l.pool_size) + "x" +
                       std::to_string(l.pool_size) +
                       " window is larger than the " +
                       std::to_string(state.width) + "x" +
                       std::to_string(state.height) + " feature map");
          break;
        }
        if (state.width % l.pool_size != 0 ||
            state.height % l.pool_size != 0) {
          out.emit("MN-NN-003", Severity::kWarning,
                   label + ": " + std::to_string(l.pool_size) + "x" +
                       std::to_string(l.pool_size) +
                       " window does not tile the " +
                       std::to_string(state.width) + "x" +
                       std::to_string(state.height) +
                       " map evenly — edge pixels are dropped");
        }
        state.width /= l.pool_size;
        state.height /= l.pool_size;
        break;
      }
    }
  }
  return out;
}

DiagnosticList check_mapping(const nn::Network& network,
                             const arch::AcceleratorConfig& cfg) {
  DiagnosticList out;
  const int device_bits = cfg.device().level_bits;
  for (std::size_t i = 0; i < network.layers.size(); ++i) {
    const nn::Layer& l = network.layers[i];
    if (!l.is_weighted()) continue;
    const std::string label = layer_label(l, i);
    arch::LayerMapping mapping;
    try {
      mapping = arch::map_layer(l, network, cfg);
    } catch (const std::exception& e) {
      out.emit("MN-NN-004", Severity::kError,
               label + ": cannot map onto " +
                   std::to_string(cfg.crossbar_size) + "x" +
                   std::to_string(cfg.crossbar_size) + " crossbars: " +
                   e.what());
      continue;
    }
    if (mapping.cells_per_weight > 4) {
      out.emit("MN-NN-006", Severity::kWarning,
               label + ": each " + std::to_string(network.weight_bits) +
                   "-bit weight spreads across " +
                   std::to_string(mapping.cells_per_weight) + " cells (" +
                   cfg.memristor_model + " stores " +
                   std::to_string(device_bits) + " bits/cell)")
          .hint = "a higher-precision cell or lower weight_bits shrinks the "
                  "array and the adder/shifter tree";
    }
  }
  return out;
}

DiagnosticList check_defect_map(const fault::DefectMap& map) {
  DiagnosticList out;
  const bool has_faults = !map.stuck_cells.empty() ||
                          !map.broken_wordlines.empty() ||
                          !map.broken_bitlines.empty();
  if (map.rows <= 0 || map.cols <= 0) {
    if (has_faults) {
      out.emit("MN-NN-005", Severity::kError,
               "defect map declares faults for an empty " +
                   std::to_string(map.rows) + "x" + std::to_string(map.cols) +
                   " array");
    }
    return out;
  }
  for (const auto& cell : map.stuck_cells) {
    if (cell.row < 0 || cell.row >= map.rows || cell.col < 0 ||
        cell.col >= map.cols) {
      out.emit("MN-NN-005", Severity::kError,
               "stuck cell (" + std::to_string(cell.row) + ", " +
                   std::to_string(cell.col) + ") is outside the " +
                   std::to_string(map.rows) + "x" + std::to_string(map.cols) +
                   " array");
    }
  }
  for (int row : map.broken_wordlines) {
    if (row < 0 || row >= map.rows) {
      out.emit("MN-NN-005", Severity::kError,
               "broken wordline " + std::to_string(row) +
                   " is outside the array (rows 0.." +
                   std::to_string(map.rows - 1) + ")");
    }
  }
  for (int col : map.broken_bitlines) {
    if (col < 0 || col >= map.cols) {
      out.emit("MN-NN-005", Severity::kError,
               "broken bitline " + std::to_string(col) +
                   " is outside the array (columns 0.." +
                   std::to_string(map.cols - 1) + ")");
    }
  }
  return out;
}

DiagnosticList check_custom_spec(const sim::CustomAcceleratorSpec& spec) {
  DiagnosticList out;
  const std::string label =
      spec.name.empty() ? std::string("custom design") : "'" + spec.name + "'";
  if (spec.modules.empty()) {
    out.emit("MN-CUS-001", Severity::kError, label + ": no modules");
    return out;
  }
  for (const auto& m : spec.modules) {
    if (m.count <= 0) {
      out.emit("MN-CUS-002", Severity::kError,
               label + ": module '" + m.name + "' has count " +
                   std::to_string(m.count) + " (must be positive)");
    }
    if (m.ops_per_task < 0) {
      out.emit("MN-CUS-002", Severity::kError,
               label + ": module '" + m.name +
                   "' has a negative ops_per_task");
    }
  }
  if (spec.pipeline_stages < 1) {
    out.emit("MN-CUS-003", Severity::kError,
             label + ": pipeline_stages must be >= 1");
  } else if (spec.pipeline_stages > 1 && !(spec.cycle_time > 0)) {
    out.emit("MN-CUS-003", Severity::kError,
             label + ": a " + std::to_string(spec.pipeline_stages) +
                 "-stage pipeline needs a positive cycle_time")
        .hint = "set cycle_time to the stage clock period in seconds";
  }
  if (spec.pipeline_stages <= 1) {
    const bool any_critical =
        std::any_of(spec.modules.begin(), spec.modules.end(),
                    [](const sim::CustomModule& m) {
                      return m.on_critical_path;
                    });
    if (!any_critical) {
      out.emit("MN-CUS-004", Severity::kWarning,
               label + ": no module is on the critical path and there is no "
                       "inner pipeline — task latency evaluates to zero")
          .hint = "mark latency-bearing modules with critical = true";
    }
  }
  return out;
}

}  // namespace mnsim::check
