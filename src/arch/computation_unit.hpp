// Level-3: Computation Unit (paper Sec. III-C, Fig. 1d).
//
// A unit owns one (unsigned) or two (signed, method 1) memristor
// crossbars, per-row input DACs with transfer-gate switches, a
// computation-oriented row decoder per crossbar, and the read path:
// column MUXes, analog subtractors merging the two polarities, and
// `p = Parallelism_Degree` ADCs driven by a counter-based controller —
// each crossbar computes p columns per read cycle and sequentially scans
// ceil(cols_used / p) cycles (Sec. III-C.4).
#pragma once

#include "arch/params.hpp"
#include "circuit/crossbar.hpp"
#include "circuit/module.hpp"

namespace mnsim::arch {

struct UnitReport {
  int rows_used = 0;
  int cols_used = 0;
  int lanes = 0;         // ADC lanes (effective parallelism)
  int read_cycles = 0;   // ceil(cols_used / lanes)

  double fixed_latency = 0.0;   // input conversion + decode + settle [s]
  double cycle_latency = 0.0;   // mux + subtract + ADC per read cycle [s]
  double pass_latency = 0.0;    // fixed + cycles * cycle [s]
  double dynamic_energy_per_pass = 0.0;  // [J]
  double leakage_power = 0.0;            // [W]
  double area = 0.0;                     // [m^2]

  // Per-pass dynamic-energy breakdown (sums to dynamic_energy_per_pass).
  double crossbar_energy = 0.0;
  double dac_energy = 0.0;
  double adc_energy = 0.0;
  double digital_energy = 0.0;

  // Per-module breakdown (area/power/latency of one instance group).
  circuit::Ppa crossbars, dacs, decoders, muxes, subtractors, adcs, control;

  // Aggregate quadruple: latency = pass_latency, dynamic power = dynamic
  // energy averaged over the pass.
  [[nodiscard]] circuit::Ppa total() const;
};

// Simulates one computation unit holding a rows_used x cols_used weight
// block (cols_used counts physical cell columns, i.e. after the
// cells-per-weight expansion). `input_bits`/`weight_bits` come from the
// network description.
UnitReport simulate_unit(int rows_used, int cols_used, int input_bits,
                         int weight_bits, const AcceleratorConfig& config);

}  // namespace mnsim::arch
