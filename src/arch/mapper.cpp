#include "arch/mapper.hpp"

#include <stdexcept>

namespace mnsim::arch {

int cells_per_weight(int weight_bits, int device_level_bits, int polarity) {
  if (weight_bits < 1 || device_level_bits < 1)
    throw std::invalid_argument("cells_per_weight: bits");
  // Signed weights spend one bit on the sign, carried by the polarity
  // scheme (two crossbars or column pairs), not by cell levels.
  const int magnitude_bits = polarity == 2 ? weight_bits - 1 : weight_bits;
  const int bits = magnitude_bits < 1 ? 1 : magnitude_bits;
  return (bits + device_level_bits - 1) / device_level_bits;
}

LayerMapping map_layer(const nn::Layer& layer, const nn::Network& network,
                       const AcceleratorConfig& config) {
  if (!layer.is_weighted())
    throw std::invalid_argument("map_layer: layer '" + layer.name +
                                "' holds no weights");
  config.validate();

  const auto device = config.device();
  LayerMapping m;
  m.matrix_rows = layer.matrix_rows();
  m.matrix_cols = layer.matrix_cols();
  m.cells_per_weight = cells_per_weight(network.weight_bits,
                                        device.level_bits,
                                        config.weight_polarity);

  m.physical_cols = m.matrix_cols * m.cells_per_weight;
  // Signed method (2) interleaves positive/negative columns in the same
  // crossbar instead of adding a second crossbar.
  if (config.weight_polarity == 2 && !config.signed_two_crossbars)
    m.physical_cols *= 2;

  const int s = config.crossbar_size;
  m.row_blocks = static_cast<int>((m.matrix_rows + s - 1) / s);
  m.col_blocks = static_cast<int>((m.physical_cols + s - 1) / s);
  m.unit_count = static_cast<long>(m.row_blocks) * m.col_blocks;

  m.rows_used_full = static_cast<int>(std::min<long>(m.matrix_rows, s));
  m.cols_used_full = static_cast<int>(std::min<long>(m.physical_cols, s));
  m.rows_used_edge = static_cast<int>(m.matrix_rows - (m.row_blocks - 1) *
                                                          static_cast<long>(s));
  m.cols_used_edge = static_cast<int>(
      m.physical_cols - (m.col_blocks - 1) * static_cast<long>(s));

  m.crossbars_per_unit =
      (config.weight_polarity == 2 && config.signed_two_crossbars) ? 2 : 1;
  m.total_crossbars = m.unit_count * m.crossbars_per_unit;
  return m;
}

}  // namespace mnsim::arch
