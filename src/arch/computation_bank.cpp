#include "arch/computation_bank.hpp"

#include <algorithm>
#include <stdexcept>

#include "accuracy/voltage_error.hpp"
#include "circuit/buffer.hpp"
#include "circuit/logic.hpp"
#include "circuit/neuron.hpp"
#include "fault/fault_model.hpp"
#include "spice/crossbar_netlist.hpp"
#include "tech/interconnect.hpp"

namespace mnsim::arch {

namespace {

// Energy of a peripheral block over one activation: its dynamic power is
// defined over its active latency.
double activation_energy(const circuit::Ppa& p) {
  return p.dynamic_power * p.latency;
}

}  // namespace

BankReport simulate_bank(const nn::Layer& layer,
                         const nn::Layer* attached_pooling,
                         const nn::Layer* next_weighted,
                         const nn::Network& network,
                         const AcceleratorConfig& config,
                         spice::CrossbarSolveCache* solve_cache) {
  if (!layer.is_weighted())
    throw std::invalid_argument("simulate_bank: layer holds no weights");
  network.validate();

  const auto cmos = config.cmos();
  BankReport rep;
  rep.mapping = map_layer(layer, network, config);
  rep.iterations = layer.compute_iterations();

  // --- units -----------------------------------------------------------------
  // Up to four unit variants: full, edge-row, edge-col, corner.
  const auto& m = rep.mapping;
  const UnitReport full = simulate_unit(m.rows_used_full, m.cols_used_full,
                                        network.input_bits,
                                        network.weight_bits, config);
  rep.unit = full;

  struct Variant {
    long count;
    UnitReport rep;
  };
  std::vector<Variant> variants;
  const long full_rows = m.row_blocks - 1;  // block-rows with full height
  const long full_cols = m.col_blocks - 1;
  const bool edge_r = m.rows_used_edge != m.rows_used_full;
  const bool edge_c = m.cols_used_edge != m.cols_used_full;
  auto unit_for = [&](int r, int c) {
    return simulate_unit(r, c, network.input_bits, network.weight_bits,
                         config);
  };
  if (!edge_r && !edge_c) {
    variants.push_back({m.unit_count, full});
  } else if (edge_r && !edge_c) {
    variants.push_back({full_rows * m.col_blocks, full});
    variants.push_back(
        {m.col_blocks, unit_for(m.rows_used_edge, m.cols_used_full)});
  } else if (!edge_r && edge_c) {
    variants.push_back({m.row_blocks * full_cols, full});
    variants.push_back(
        {m.row_blocks, unit_for(m.rows_used_full, m.cols_used_edge)});
  } else {
    variants.push_back({full_rows * full_cols, full});
    variants.push_back(
        {full_rows, unit_for(m.rows_used_full, m.cols_used_edge)});
    variants.push_back(
        {full_cols, unit_for(m.rows_used_edge, m.cols_used_full)});
    variants.push_back(
        {1, unit_for(m.rows_used_edge, m.cols_used_edge)});
  }

  double unit_pass_energy = 0.0;
  double unit_pass_latency = 0.0;
  for (const auto& v : variants) {
    rep.units_total.area += v.count * v.rep.area;
    rep.units_total.leakage_power += v.count * v.rep.leakage_power;
    unit_pass_energy += v.count * v.rep.dynamic_energy_per_pass;
    unit_pass_latency = std::max(unit_pass_latency, v.rep.pass_latency);
  }
  rep.units_total.latency = unit_pass_latency;

  // --- adder tree --------------------------------------------------------------
  rep.output_lanes = m.col_blocks * full.lanes;
  const int adc_bits = circuit::AdcModel::required_bits(
      network.input_bits, network.weight_bits, m.rows_used_full,
      config.output_bits);
  circuit::AdderTreeModel tree;
  tree.inputs = m.row_blocks;
  tree.bits = adc_bits;
  tree.shift_merge = m.cells_per_weight > 1;
  tree.max_shift = (m.cells_per_weight - 1) * config.device().level_bits;
  tree.tech = cmos;
  rep.adder_tree = tree.ppa().times(rep.output_lanes);
  rep.adder_tree.latency = tree.ppa().latency;  // lanes are parallel

  // --- pooling (CNN) -------------------------------------------------------------
  const bool has_pooling = attached_pooling != nullptr;
  if (has_pooling) {
    circuit::PoolingModel pool{attached_pooling->pool_size, adc_bits, cmos};
    const int channels = static_cast<int>(layer.matrix_cols());
    rep.pooling = pool.ppa().times(channels);
    rep.pooling.latency = pool.ppa().latency;

    circuit::LineBufferModel pbuf;
    pbuf.length = circuit::line_buffer_length(
        layer.out_width(), attached_pooling->pool_size,
        attached_pooling->pool_size);
    pbuf.bits = adc_bits;
    pbuf.channels = channels;
    pbuf.tech = cmos;
    rep.pooling_buffer = pbuf.ppa();
  }

  // --- neurons ----------------------------------------------------------------
  // One neuron module per output neuron of the pass (paper Sec. III-B.5:
  // each output-buffer register connects to a neuron through a fixed
  // wire): C_out for FC, out_channels for conv.
  circuit::NeuronModel neuron{AcceleratorConfig::neuron_for(network.type),
                              config.output_bits, cmos};
  rep.neuron_count = static_cast<int>(layer.matrix_cols());
  rep.neurons = neuron.ppa().times(rep.neuron_count);
  rep.neurons.latency = neuron.ppa().latency;

  // --- output buffer -------------------------------------------------------------
  if (layer.kind == nn::LayerKind::kConvolution && next_weighted &&
      next_weighted->kind == nn::LayerKind::kConvolution) {
    circuit::LineBufferModel obuf;
    const int eff_width =
        has_pooling ? layer.out_width() / attached_pooling->pool_size
                    : layer.out_width();
    obuf.length = circuit::line_buffer_length(
        std::max(eff_width, next_weighted->kernel), next_weighted->kernel,
        next_weighted->kernel);
    obuf.bits = config.output_bits;
    obuf.channels = static_cast<int>(layer.matrix_cols());
    obuf.tech = cmos;
    rep.output_buffer = obuf.ppa();
    // The next conv layer can start once the line buffer holds its first
    // window; pooling consumes pool^2 passes per buffered pixel.
    rep.warmup_passes = obuf.length;
    if (has_pooling)
      rep.warmup_passes *= static_cast<long>(attached_pooling->pool_size) *
                           attached_pooling->pool_size;
  } else {
    circuit::RegisterBankModel obuf;
    obuf.words = static_cast<int>(
        std::min<long>(layer.output_count(), 1 << 20));
    obuf.bits = config.output_bits;
    obuf.tech = cmos;
    rep.output_buffer = obuf.ppa();
    // A following FC layer (or the output interface) needs the complete
    // feature map; an FC bank itself finishes in one pass.
    rep.warmup_passes =
        layer.kind == nn::LayerKind::kConvolution ? rep.iterations : 1;
  }

  // --- roll-up -----------------------------------------------------------------
  auto add_block = [&](const circuit::Ppa& p) {
    rep.area += p.area;
    rep.leakage_power += p.leakage_power;
  };
  add_block(rep.units_total);
  add_block(rep.adder_tree);
  add_block(rep.pooling);
  add_block(rep.pooling_buffer);
  add_block(rep.neurons);
  add_block(rep.output_buffer);

  rep.pass_latency = unit_pass_latency + rep.adder_tree.latency +
                     rep.pooling.latency + rep.neurons.latency +
                     rep.output_buffer.latency;
  rep.sample_latency = rep.pass_latency * rep.iterations;

  double peripheral_pass_energy =
      activation_energy(rep.adder_tree) + activation_energy(rep.pooling) +
      activation_energy(rep.pooling_buffer) +
      activation_energy(rep.neurons) + activation_energy(rep.output_buffer);
  rep.dynamic_energy_per_sample =
      (unit_pass_energy + peripheral_pass_energy) * rep.iterations;
  rep.energy_per_sample = rep.dynamic_energy_per_sample +
                          rep.leakage_power * rep.sample_latency;

  // --- computing accuracy of this bank's crossbars -------------------------------
  accuracy::CrossbarErrorInputs err;
  err.rows = m.rows_used_full;
  err.cols = m.cols_used_full;
  err.device = config.device();
  err.segment_resistance =
      tech::interconnect_tech(config.interconnect_node_nm).segment_resistance;
  err.sense_resistance = units::Ohms{config.sense_resistance};
  const auto eps = accuracy::estimate_voltage_error(err);
  rep.epsilon_worst = eps.worst;
  rep.epsilon_average = eps.average;

  // Hard-defect composition (src/fault): the defect-induced output
  // deviation of this bank's crossbar geometry adds to the soft-error
  // chain; optionally cross-validated with a defect-injected
  // circuit-level solve whose diagnostics ride up the report.
  if (config.fault.enabled()) {
    const auto fe = fault::estimate_fault_error(err, config.fault);
    rep.epsilon_worst = fe.combined_worst;
    rep.epsilon_average = fe.combined_average;
    rep.solver.faults_injected += fe.faults_injected;

    if (config.fault.circuit_check) {
      // A bounded sub-array keeps the validation solve tractable inside
      // DSE sweeps while still exercising the defect classes.
      const int check_rows =
          std::min(err.rows, config.fault.circuit_check_size);
      const int check_cols =
          std::min(err.cols, config.fault.circuit_check_size);
      auto spec = spice::CrossbarSpec::uniform(
          check_rows, check_cols, err.device,
          err.segment_resistance.value(), err.sense_resistance.value(),
          err.device.r_min.value());
      const auto map = fault::generate_defect_map(
          check_rows, check_cols, config.fault, err.device);
      fault::apply_to_spec(map, spec);
      const auto sol =
          spice::solve_crossbar(spec, config.solver_options(), solve_cache);
      rep.solver.absorb(sol.dc.diagnostics);
    }
  }
  return rep;
}

}  // namespace mnsim::arch
