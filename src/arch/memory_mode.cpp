#include "arch/memory_mode.hpp"

#include <algorithm>

#include "arch/computation_unit.hpp"
#include "circuit/adc.hpp"
#include "circuit/crossbar.hpp"
#include "circuit/decoder.hpp"
#include "circuit/write_circuit.hpp"

namespace mnsim::arch {

double write_select_overhead(double driver_latency, double write_pulse) {
  return std::max(driver_latency - write_pulse, 0.0);
}

MemoryModeReport simulate_memory_mode(const AcceleratorConfig& config,
                                      int input_bits, int weight_bits) {
  config.validate();
  const auto cmos = config.cmos();
  const auto device = config.device();
  const int size = config.crossbar_size;

  circuit::CrossbarModel xbar;
  xbar.rows = size;
  xbar.cols = size;
  xbar.device = device;
  xbar.cell = config.cell_type;
  xbar.interconnect_node_nm = config.interconnect_node_nm;
  xbar.sense_resistance = units::Ohms{config.sense_resistance};

  // READ: two memory-oriented decoders select the cell, then the sense
  // amplifier converts (one multi-level read = one ADC conversion).
  circuit::DecoderModel row_dec{size, circuit::DecoderKind::kMemoryOriented,
                                cmos};
  circuit::DecoderModel col_dec = row_dec;
  circuit::AdcModel sense{config.adc_kind, device.level_bits,
                          units::Hertz{config.adc_clock}, cmos};

  MemoryModeReport rep;
  rep.read_latency = row_dec.ppa().latency + col_dec.ppa().latency +
                     device.read_latency.value() +
                     sense.conversion_latency().value();
  rep.read_power = xbar.read_power().value() +
                   row_dec.ppa().leakage_power +
                   col_dec.ppa().leakage_power;
  rep.read_energy = xbar.read_power().value() * rep.read_latency +
                    sense.conversion_energy().value() +
                    (row_dec.ppa().dynamic_power + col_dec.ppa().dynamic_power) *
                        row_dec.ppa().latency;

  // WRITE: one row at a time through the write drivers; the
  // program-and-verify loop sets the pulse count.
  circuit::WriteDriverModel driver{size, cmos, device};
  circuit::ProgramVerifyModel verify;
  verify.device = device;
  rep.row_write_latency =
      write_select_overhead(driver.ppa().latency,
                            device.write_latency.value()) +
      verify.row_program_time(size).value();
  // Average-case pulse energy across columns at the harmonic-mean state,
  // with the expected pulses of a mid-range transition.
  const double pulses =
      verify.expected_pulses(0, device.levels() / 2);
  rep.row_write_energy =
      size * pulses *
          driver.pulse_energy(device.harmonic_mean_resistance()).value() +
      driver.ppa().dynamic_power * driver.ppa().latency;
  rep.array_write_latency = size * rep.row_write_latency;
  rep.array_write_energy = size * rep.row_write_energy;

  // COMPUTE contrast: the full unit pass.
  const UnitReport unit =
      simulate_unit(size, size, input_bits, weight_bits, config);
  rep.compute_latency = unit.pass_latency;
  rep.compute_energy = unit.dynamic_energy_per_pass;
  rep.cells_per_read = 1;
  rep.cells_per_compute = static_cast<long>(size) * size;
  return rep;
}

}  // namespace mnsim::arch
