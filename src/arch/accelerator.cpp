#include "arch/accelerator.hpp"

#include <algorithm>

#include "accuracy/digital_error.hpp"
#include "check/check.hpp"
#include "check/config_check.hpp"
#include "circuit/buffer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"

namespace mnsim::arch {

BreakdownItem AcceleratorBreakdown::total() const {
  BreakdownItem t;
  for (const BreakdownItem* item :
       {&crossbars, &input_dacs, &read_circuits, &decoders, &digital,
        &adder_trees, &neurons, &pooling, &buffers, &interfaces}) {
    t.area += item->area;
    t.energy += item->energy;
  }
  return t;
}

double AcceleratorBreakdown::read_circuit_area_share() const {
  const auto t = total();
  return t.area > 0 ? read_circuits.area / t.area : 0.0;
}

double AcceleratorBreakdown::read_circuit_energy_share() const {
  const auto t = total();
  return t.energy > 0 ? read_circuits.energy / t.energy : 0.0;
}

namespace {

// Accumulates one bank into the module-class breakdown using its
// representative full unit scaled to the bank's unit count.
void accumulate_breakdown(AcceleratorBreakdown& bd, const BankReport& bank) {
  const double units = static_cast<double>(bank.mapping.unit_count);
  const double passes = static_cast<double>(bank.iterations);
  const auto& u = bank.unit;

  bd.crossbars.area += units * u.crossbars.area;
  bd.crossbars.energy += units * passes * u.crossbar_energy;
  bd.input_dacs.area += units * u.dacs.area;
  bd.input_dacs.energy += units * passes * u.dac_energy;
  bd.read_circuits.area +=
      units * (u.adcs.area + u.muxes.area + u.subtractors.area);
  bd.read_circuits.energy += units * passes * u.adc_energy;
  bd.decoders.area += units * u.decoders.area;
  bd.digital.area += units * u.control.area;
  bd.digital.energy += units * passes * u.digital_energy;

  auto peripheral = [&](BreakdownItem& item, const circuit::Ppa& p) {
    item.area += p.area;
    item.energy += passes * p.dynamic_power * p.latency;
  };
  peripheral(bd.adder_trees, bank.adder_tree);
  peripheral(bd.neurons, bank.neurons);
  peripheral(bd.pooling, bank.pooling);
  peripheral(bd.pooling, bank.pooling_buffer);
  peripheral(bd.buffers, bank.output_buffer);
}

}  // namespace

AcceleratorReport simulate_accelerator(const nn::Network& network,
                                       const AcceleratorConfig& config) {
  std::vector<AcceleratorConfig> per_bank;
  int banks = 0;
  for (const auto& layer : network.layers)
    if (layer.is_weighted()) ++banks;
  per_bank.assign(static_cast<std::size_t>(banks > 0 ? banks : 1), config);
  return simulate_accelerator(network, per_bank);
}

AcceleratorReport simulate_accelerator(
    const nn::Network& network,
    const std::vector<AcceleratorConfig>& per_bank_configs) {
  obs::Span span("arch.simulate_accelerator");
  network.validate();
  if (per_bank_configs.empty())
    throw std::invalid_argument("simulate_accelerator: no configurations");
  for (const auto& cfg : per_bank_configs) cfg.validate();
  const AcceleratorConfig& config = per_bank_configs.front();

  AcceleratorReport rep;

  // Semantic pre-flight ([check] Enabled): shape chain, mapping
  // feasibility and configuration consistency, before any bank is built.
  // Errors throw with the full diagnosis; warnings ride in the report
  // (or block too, under Warnings_As_Errors).
  if (config.check_preflight) {
    // The front configuration vets the whole system; heterogeneous
    // designs additionally get a consistency pass per extra config.
    check::DiagnosticList diags = check::check_system(network, config);
    for (std::size_t i = 1; i < per_bank_configs.size(); ++i)
      diags.merge(check::check_config_consistency(per_bank_configs[i]));
    if (config.check_warnings_as_errors) diags.promote_warnings();
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
    rep.diagnostics = diags.take();
  }
  const auto cmos = config.cmos();

  // Pair each weighted layer with its attached pooling and the next
  // weighted layer (paper Sec. III-A: pooling/ReLU/... are peripheral
  // functions of the preceding computation bank).
  std::vector<const nn::Layer*> weighted;
  std::vector<const nn::Layer*> pooling_after;
  for (const auto& layer : network.layers) {
    if (layer.is_weighted()) {
      weighted.push_back(&layer);
      pooling_after.push_back(nullptr);
    } else if (layer.kind == nn::LayerKind::kPooling && !weighted.empty()) {
      pooling_after.back() = &layer;
    }
  }

  if (per_bank_configs.size() != weighted.size())
    throw std::invalid_argument(
        "simulate_accelerator: need one configuration per weighted layer (" +
        std::to_string(weighted.size()) + "), got " +
        std::to_string(per_bank_configs.size()));

  std::vector<double> eps_worst;
  std::vector<double> eps_avg;
  // One crossbar solve cache shared by every bank's fault circuit-check:
  // the checks all clip to fault.circuit_check_size, so after the first
  // bank builds the topology the remaining banks refill it (cache_hits
  // in the solver diagnostics below).
  spice::CrossbarSolveCache solve_cache;
  for (std::size_t i = 0; i < weighted.size(); ++i) {
    // Watchdog poll (docs/ROBUSTNESS.md): bank boundaries are the
    // coarsest rung of the cancellation ladder — the finer ones sit in
    // the CG/LU/Newton loops a bank's circuit checks may enter.
    util::throw_if_cancelled("arch.bank");
    obs::Span bank_span("arch.bank");
    const nn::Layer* next =
        i + 1 < weighted.size() ? weighted[i + 1] : nullptr;
    BankReport bank = simulate_bank(*weighted[i], pooling_after[i], next,
                                    network, per_bank_configs[i],
                                    &solve_cache);
    rep.area += bank.area;
    rep.leakage_power += bank.leakage_power;
    rep.sample_latency += bank.sample_latency;
    rep.pipeline_cycle = std::max(rep.pipeline_cycle, bank.pass_latency);
    rep.energy_per_sample += bank.energy_per_sample;
    rep.total_crossbars += bank.mapping.total_crossbars;
    rep.total_units += bank.mapping.unit_count;
    eps_worst.push_back(bank.epsilon_worst);
    eps_avg.push_back(bank.epsilon_average);
    rep.solver.absorb(bank.solver);
    accumulate_breakdown(rep.breakdown, bank);
    rep.banks.push_back(std::move(bank));
  }
  rep.fault_config = per_bank_configs.front().fault;

  obs::Registry& reg = obs::Registry::global();
  reg.add("arch.banks", static_cast<long>(rep.banks.size()));
  reg.add("arch.crossbars", rep.total_crossbars);
  if (rep.solver.faults_injected)
    reg.add("fault.faults_injected", rep.solver.faults_injected);

  // Accelerator I/O interfaces (Sec. III-A).
  {
    obs::Span io_span("arch.interfaces");
    circuit::IoInterfaceModel io_in;
    io_in.wires = config.interface_in;
    io_in.sample_bits = network.input_size() * network.input_bits;
    io_in.bus_clock = units::Hertz{config.bus_clock};
    io_in.tech = cmos;
    rep.io_input = io_in.ppa();

    circuit::IoInterfaceModel io_out;
    io_out.wires = config.interface_out;
    io_out.sample_bits = network.output_size() * config.output_bits;
    io_out.bus_clock = units::Hertz{config.bus_clock};
    io_out.tech = cmos;
    rep.io_output = io_out.ppa();
  }

  rep.breakdown.interfaces.area = rep.io_input.area + rep.io_output.area;
  rep.breakdown.interfaces.energy =
      rep.io_input.dynamic_power * rep.io_input.latency +
      rep.io_output.dynamic_power * rep.io_output.latency;

  rep.area += rep.io_input.area + rep.io_output.area;
  rep.leakage_power +=
      rep.io_input.leakage_power + rep.io_output.leakage_power;
  rep.sample_latency += rep.io_input.latency + rep.io_output.latency;
  rep.energy_per_sample +=
      rep.io_input.dynamic_power * rep.io_input.latency +
      rep.io_output.dynamic_power * rep.io_output.latency;

  rep.power = rep.sample_latency > 0
                  ? rep.energy_per_sample / rep.sample_latency
                  : 0.0;

  // Accuracy propagation across banks (Eq. 15), then digitization
  // (Eq. 12-14) at the read-circuit quantization.
  const int k = 1 << config.output_bits;
  rep.epsilon_worst = accuracy::propagate_layers(eps_worst).empty()
                          ? 0.0
                          : accuracy::propagate_layers(eps_worst).back();
  rep.epsilon_average = accuracy::propagate_layers(eps_avg).back();
  rep.max_error_rate = accuracy::max_error_rate(k, rep.epsilon_worst);
  rep.avg_error_rate = accuracy::avg_error_rate(k, rep.epsilon_average);
  rep.relative_accuracy = 1.0 - rep.avg_error_rate;
  return rep;
}

}  // namespace mnsim::arch
