// Level-2: Computation Bank (paper Sec. III-B, Fig. 1c).
//
// One bank processes one neuromorphic layer: a grid of computation units
// (block-tiled weight matrix; the units of a block-row form a synapse
// sub-bank sharing inputs), an adder tree merging block-row results
// (with shifters when a weight spans several cells), the optional pooling
// module + pooling line buffer (CNN), the non-linear neuron modules, and
// the output buffer (registers for FC, Eq. 6 line buffers for cascaded
// conv layers).
#pragma once

#include <optional>

#include "arch/computation_unit.hpp"
#include "arch/mapper.hpp"
#include "circuit/module.hpp"

namespace mnsim::arch {

struct BankReport {
  LayerMapping mapping;
  UnitReport unit;               // representative full unit
  long iterations = 1;           // matrix-vector passes per input sample
  long warmup_passes = 1;        // passes before the next bank can start
                                 // (line-buffer fill for conv-to-conv,
                                 // everything for conv-to-FC, 1 for FC)

  circuit::Ppa units_total;      // all units (area/leakage; power averaged)
  circuit::Ppa adder_tree, pooling, pooling_buffer, neurons, output_buffer;

  double area = 0.0;             // [m^2]
  double leakage_power = 0.0;    // [W]
  double pass_latency = 0.0;     // one matrix-vector pass through the bank
  double sample_latency = 0.0;   // iterations * pass (streamed)
  double dynamic_energy_per_sample = 0.0;
  double energy_per_sample = 0.0;  // dynamic + leakage * sample_latency

  int neuron_count = 0;
  int output_lanes = 0;          // simultaneous outputs after the tree

  // Analog computing error rates of this bank's crossbars (Sec. VI),
  // including the hard-defect contribution when fault injection is on.
  double epsilon_worst = 0.0;
  double epsilon_average = 0.0;

  // Fault-injection bookkeeping and circuit-level solver diagnostics for
  // this bank (faults_injected counts the bank's defect map; the solver
  // counters are nonzero only when fault.circuit_check ran a
  // defect-injected circuit-level solve).
  spice::SolverDiagnostics solver;

  [[nodiscard]] double average_power() const {
    return sample_latency > 0
               ? energy_per_sample / sample_latency
               : 0.0;
  }
};

// Simulates the bank for `layer` (must be weighted). `attached_pooling`
// is the pooling layer following it, if any; `next_weighted` (when given
// and convolutional) sizes the Eq. 6 output line buffer. When
// `solve_cache` is non-null the fault circuit-check solve reuses the
// cached crossbar topology across banks sharing one geometry (the
// common case: every bank clipped to fault.circuit_check_size), counted
// in the bank's solver diagnostics.
BankReport simulate_bank(const nn::Layer& layer,
                         const nn::Layer* attached_pooling,
                         const nn::Layer* next_weighted,
                         const nn::Network& network,
                         const AcceleratorConfig& config,
                         spice::CrossbarSolveCache* solve_cache = nullptr);

}  // namespace mnsim::arch
