#include "arch/cycle_sim.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mnsim::arch {
namespace {

// Integer cycles of one matrix-vector pass. A scheduled pass occupies at
// least one cycle so zero-latency degenerate banks still serialize.
long pass_cycles(double latency, double clock_hz) {
  return std::max<long>(1, std::llround(latency * clock_hz));
}

// Upstream tiles that must have drained before tile k of a `passes`-tile
// bank may start: the producer's warm-up plus the proportional streamed
// share — the trace simulator's Eq. 6 dependency rule.
long needed_upstream(long k, long passes, long up_passes, long up_warmup) {
  const long streamed =
      passes > 1 ? (k * std::max<long>(up_passes - up_warmup, 0)) /
                       std::max<long>(passes - 1, 1)
                 : up_passes - up_warmup;
  return std::min<long>(up_passes, up_warmup + streamed);
}

}  // namespace

CycleSimResult simulate_cycles(const AcceleratorReport& report,
                               const AcceleratorConfig& config) {
  obs::Span span("arch.cycle_sim");
  config.validate();
  const double if_capacity = config.cycle_ifmap_kb * 1024.0;
  const double filter_capacity = config.cycle_filter_kb * 1024.0;
  const double of_capacity = config.cycle_ofmap_kb * 1024.0;
  // Activations cross the hierarchy at the read-circuit precision;
  // weight cells carry the device's level bits.
  const double elem_bytes = std::max(1.0, std::ceil(config.output_bits / 8.0));
  const double cell_bits = config.device().level_bits;

  // Pre-flight: the engine walks iteration counts and pass latencies, so
  // a malformed report (no banks, non-finite timing, negative counts) or
  // a scratchpad that cannot hold a single tile would loop forever or
  // deadlock the schedule. Refuse with coded diagnostics instead
  // (docs/DIAGNOSTICS.md, MN-CYC-*).
  CycleSimResult result;
  {
    check::DiagnosticList diags;
    if (report.banks.empty())
      diags.emit("MN-CYC-001", check::Severity::kError,
                 "cycle simulation needs at least one computation bank");
    for (std::size_t b = 0; b < report.banks.size(); ++b) {
      const auto& bank = report.banks[b];
      const std::string loc = "bank " + std::to_string(b);
      if (!(bank.pass_latency >= 0) || !(bank.pass_latency < 1e30)) {
        diags.emit("MN-CYC-002", check::Severity::kError,
                   loc + " has a non-finite or negative pass latency")
            .location = loc;
      }
      if (bank.iterations < 0) {
        diags.emit("MN-CYC-002", check::Severity::kError,
                   loc + " has a negative iteration count")
            .location = loc;
      }
      if (bank.iterations <= 0 || diags.has_errors()) continue;
      const double if_tile = bank.mapping.matrix_rows * elem_bytes;
      const double of_tile = bank.mapping.matrix_cols * elem_bytes;
      if (if_tile > if_capacity) {
        auto& d = diags.emit(
            "MN-CYC-003", check::Severity::kError,
            loc + ": ifmap scratchpad smaller than one tile");
        d.location = loc;
        d.hint = "one ifmap tile is " + std::to_string(if_tile) +
                 " bytes; raise [cycle] Ifmap_KB";
      }
      if (of_tile > of_capacity) {
        auto& d = diags.emit(
            "MN-CYC-003", check::Severity::kError,
            loc + ": ofmap scratchpad smaller than one tile");
        d.location = loc;
        d.hint = "one ofmap tile is " + std::to_string(of_tile) +
                 " bytes; raise [cycle] Ofmap_KB";
      }
      // Weight programming stages one crossbar cell image at a time
      // through the filter scratchpad.
      const double xbar_image = std::ceil(
          static_cast<double>(config.crossbar_size) * config.crossbar_size *
          cell_bits / 8.0);
      if (xbar_image > filter_capacity) {
        auto& d = diags.emit(
            "MN-CYC-003", check::Severity::kError,
            loc + ": filter scratchpad smaller than one crossbar image");
        d.location = loc;
        d.hint = "one crossbar cell image is " + std::to_string(xbar_image) +
                 " bytes; raise [cycle] Filter_KB";
      }
    }
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
  }

  // Clock: pinned by [cycle] Clock_GHz, or auto-derived so the shortest
  // scheduled pass spans kAutoCyclesPerPass cycles (quantization error
  // of the makespan <= ~1/kAutoCyclesPerPass).
  double clock_hz = config.cycle_clock_ghz * 1e9;
  if (!(clock_hz > 0)) {
    double min_latency = 0.0;
    for (const auto& bank : report.banks) {
      if (bank.iterations <= 0 || !(bank.pass_latency > 0)) continue;
      if (min_latency == 0.0 || bank.pass_latency < min_latency)
        min_latency = bank.pass_latency;
    }
    clock_hz = min_latency > 0
                   ? static_cast<double>(kAutoCyclesPerPass) / min_latency
                   : 1e9;
  }
  const double bytes_per_cycle =
      config.cycle_bandwidth_gbps * 1e9 / clock_hz;

  // Overflow guard: the integer schedule must stay far inside the exact
  // range of long (and double, for the seconds conversion). Bound the
  // worst case — fully serialized compute plus every transfer — before
  // walking anything.
  {
    double bound = 0.0;
    for (const auto& bank : report.banks) {
      if (bank.iterations <= 0) continue;
      const double cpt = std::max(1.0, bank.pass_latency * clock_hz);
      const double tile_bytes =
          (bank.mapping.matrix_rows + bank.mapping.matrix_cols) * elem_bytes;
      bound += static_cast<double>(bank.iterations) *
               (cpt + 2.0 + tile_bytes / bytes_per_cycle);
    }
    if (bound > 4.5e15) {
      check::DiagnosticList diags;
      auto& d = diags.emit("MN-CYC-004", check::Severity::kError,
                           "cycle schedule would overflow the integer "
                           "cycle domain");
      d.hint = "lower [cycle] Clock_GHz (or leave it 0 for auto)";
      throw check::CheckError(std::move(diags));
    }
  }

  result.clock_hz = clock_hz;
  result.dataflow = config.cycle_dataflow;
  result.fill_policy = config.cycle_fill_policy;
  result.banks.resize(report.banks.size());

  const long max_events = std::max<long>(config.cycle_max_events, 0);
  auto record = [&](int bank, long tile, TilePhase phase, long start,
                    long end) {
    if (static_cast<long>(result.events.size()) < max_events)
      result.events.push_back({bank, tile, phase, start, end});
  };

  // avail[k]: cycle at which the bank's tile-k output has landed in the
  // backing store (drain end) and may be consumed downstream.
  std::vector<long> up_avail;
  long makespan = 0;

  for (std::size_t b = 0; b < report.banks.size(); ++b) {
    const auto& bank = report.banks[b];
    CycleBankStats& stats = result.banks[b];
    const long tiles = bank.iterations;
    std::vector<long> avail(static_cast<std::size_t>(std::max<long>(tiles, 0)),
                            0);
    if (tiles <= 0) {
      up_avail = std::move(avail);
      continue;
    }

    const long cpt = pass_cycles(bank.pass_latency, clock_hz);
    const double if_tile = bank.mapping.matrix_rows * elem_bytes;
    const double of_tile = bank.mapping.matrix_cols * elem_bytes;
    // Slot rings never need more slots than the bank has tiles.
    const long if_cap = std::min<long>(
        static_cast<long>(if_capacity / std::max(if_tile, 1.0)), tiles);
    const long of_cap = std::min<long>(
        static_cast<long>(of_capacity / std::max(of_tile, 1.0)), tiles);

    stats.tiles = tiles;
    stats.compute_cycles_per_tile = cpt;
    stats.busy_cycles = tiles * cpt;
    stats.ifmap_capacity_tiles = if_cap;
    stats.ofmap_capacity_tiles = of_cap;
    stats.filter_bytes = std::ceil(
        static_cast<double>(bank.mapping.matrix_rows) *
        static_cast<double>(bank.mapping.physical_cols) *
        static_cast<double>(bank.mapping.crossbars_per_unit) * cell_bits /
        8.0);

    // Residency: input-/output-stationary banks keep the whole sample's
    // operand in the scratchpad when it fits; otherwise warn and stream.
    stats.resident_ifmap =
        config.cycle_dataflow == Dataflow::kInputStationary &&
        static_cast<double>(tiles) * if_tile <= if_capacity;
    stats.resident_ofmap =
        config.cycle_dataflow == Dataflow::kOutputStationary &&
        static_cast<double>(tiles) * of_tile <= of_capacity;
    const bool wanted_if =
        config.cycle_dataflow == Dataflow::kInputStationary;
    const bool wanted_of =
        config.cycle_dataflow == Dataflow::kOutputStationary;
    if ((wanted_if && !stats.resident_ifmap) ||
        (wanted_of && !stats.resident_ofmap)) {
      check::Diagnostic d;
      d.code = "MN-CYC-005";
      d.severity = check::Severity::kWarning;
      d.location = "bank " + std::to_string(b);
      d.message = "bank " + std::to_string(b) + ": " +
                  dataflow_name(config.cycle_dataflow) +
                  " sample does not fit the scratchpad; streaming instead";
      d.hint = wanted_if
                   ? "needs " +
                         std::to_string(static_cast<double>(tiles) * if_tile) +
                         " bytes of [cycle] Ifmap_KB"
                   : "needs " +
                         std::to_string(static_cast<double>(tiles) * of_tile) +
                         " bytes of [cycle] Ofmap_KB";
      result.diagnostics.push_back(std::move(d));
    }

    const long up_passes =
        b > 0 ? report.banks[b - 1].iterations : 0;
    const long up_warmup =
        b > 0 ? std::min(report.banks[b - 1].warmup_passes, up_passes) : 0;

    BackingChannel bus(bytes_per_cycle);
    Scratchpad if_spad(if_cap);
    Scratchpad of_spad(of_cap);

    // Input-stationary: gather the whole ifmap in one bulk fill once the
    // upstream bank has drained everything this bank consumes.
    long bulk_fill_end = 0;
    if (stats.resident_ifmap) {
      long dep = 0;
      if (b > 0 && up_passes > 0)
        dep = up_avail[static_cast<std::size_t>(up_passes - 1)];
      const long busy_before = bus.busy_cycles();
      bulk_fill_end = bus.transfer(dep, static_cast<double>(tiles) * if_tile);
      record(static_cast<int>(b), 0, TilePhase::kFill,
             bulk_fill_end - (bus.busy_cycles() - busy_before), bulk_fill_end);
      stats.ifmap_bytes += static_cast<double>(tiles) * if_tile;
    }

    long prev_end = 0;
    for (long k = 0; k < tiles; ++k) {
      // Upstream dependency (streamed fills only; the bulk fill already
      // folded the full dependency into its start).
      long dep = 0;
      if (!stats.resident_ifmap && b > 0) {
        const long needed = needed_upstream(k, tiles, up_passes, up_warmup);
        if (needed > 0) dep = up_avail[static_cast<std::size_t>(needed - 1)];
      }

      // Ifmap fill: starts once the data exists, the target slot is free
      // and — demand policy — the PE has asked for it.
      long fill_end = bulk_fill_end;
      if (!stats.resident_ifmap) {
        long floor = std::max(dep, if_spad.slot_free(k));
        if (config.cycle_fill_policy == FillPolicy::kDemand)
          floor = std::max(floor, prev_end);
        const long busy_before = bus.busy_cycles();
        fill_end = bus.transfer(floor, if_tile);
        record(static_cast<int>(b), k, TilePhase::kFill,
               fill_end - (bus.busy_cycles() - busy_before), fill_end);
        stats.ifmap_bytes += if_tile;
      }

      // Ofmap slot: resident outputs always have space; streamed outputs
      // wait for the slot's previous occupant to finish draining.
      const long of_free = stats.resident_ofmap ? 0 : of_spad.slot_free(k);

      // Successive maxima attribute every waited cycle to one bucket.
      // Tile 0's wait precedes the bank's active window — it is ramp-up
      // idle, not a stall, so span == busy + stalls holds exactly.
      const long t1 = std::max(prev_end, dep);
      const long t2 = std::max(t1, fill_end);
      const long t3 = std::max(t2, of_free);
      if (k > 0) {
        stats.dependency_stall_cycles += t1 - prev_end;
        stats.fill_stall_cycles += t2 - t1;
        stats.drain_stall_cycles += t3 - t2;
      }

      const long start = t3;
      const long end = start + cpt;
      record(static_cast<int>(b), k, TilePhase::kCompute, start, end);
      if (k == 0) stats.start_cycle = start;
      if (!stats.resident_ifmap) if_spad.release(k, end);

      if (stats.resident_ofmap) {
        avail[static_cast<std::size_t>(k)] = end;  // patched by bulk drain
      } else {
        const long busy_before = bus.busy_cycles();
        const long drain_end = bus.transfer(end, of_tile);
        record(static_cast<int>(b), k, TilePhase::kDrain,
               drain_end - (bus.busy_cycles() - busy_before), drain_end);
        of_spad.release(k, drain_end);
        avail[static_cast<std::size_t>(k)] = drain_end;
        stats.ofmap_bytes += of_tile;
      }
      prev_end = end;
    }
    stats.finish_cycle = prev_end;

    // Output-stationary: the accumulated ofmap leaves in one bulk drain
    // after the last pass; downstream sees nothing earlier.
    long last_activity = stats.resident_ofmap ? prev_end : avail.back();
    if (stats.resident_ofmap) {
      const long busy_before = bus.busy_cycles();
      const long drain_end =
          bus.transfer(prev_end, static_cast<double>(tiles) * of_tile);
      record(static_cast<int>(b), tiles - 1, TilePhase::kDrain,
             drain_end - (bus.busy_cycles() - busy_before), drain_end);
      std::fill(avail.begin(), avail.end(), drain_end);
      stats.ofmap_bytes += static_cast<double>(tiles) * of_tile;
      last_activity = drain_end;
    }

    stats.bus_busy_cycles = bus.busy_cycles();
    const long active = stats.span_cycles();
    stats.utilization =
        active > 0 ? static_cast<double>(stats.busy_cycles) /
                         static_cast<double>(active)
                   : 0.0;
    makespan = std::max(makespan, last_activity);
    up_avail = std::move(avail);
  }

  result.makespan_cycles = makespan;
  result.makespan_seconds = static_cast<double>(makespan) / clock_hz;
  long scheduled = 0;
  for (auto& stats : result.banks) {
    result.total_tiles += stats.tiles;
    result.total_busy_cycles += stats.busy_cycles;
    result.total_stall_cycles += stats.stall_cycles();
    result.backing_traffic_bytes += stats.ifmap_bytes + stats.ofmap_bytes;
    result.weight_image_bytes += stats.filter_bytes;
    stats.idle_cycles = makespan - stats.span_cycles();
    stats.bus_utilization =
        makespan > 0 ? static_cast<double>(stats.bus_busy_cycles) /
                           static_cast<double>(makespan)
                     : 0.0;
    scheduled += stats.span_cycles();
  }
  const double pe_cycles =
      static_cast<double>(result.banks.size()) * static_cast<double>(makespan);
  result.pe_scheduled_fraction =
      pe_cycles > 0 ? static_cast<double>(scheduled) / pe_cycles : 0.0;
  result.pe_active_fraction =
      pe_cycles > 0 ? static_cast<double>(result.total_busy_cycles) / pe_cycles
                    : 0.0;
  result.stall_fraction =
      scheduled > 0
          ? static_cast<double>(result.total_stall_cycles) /
                static_cast<double>(scheduled)
          : 0.0;

  obs::Registry& reg = obs::Registry::global();
  reg.add("cycle.tiles", result.total_tiles);
  reg.add("cycle.busy_cycles", result.total_busy_cycles);
  reg.add("cycle.stall_cycles", result.total_stall_cycles);
  reg.add("cycle.backing_bytes",
          static_cast<long>(result.backing_traffic_bytes));
  reg.set("cycle.pe_active_fraction", result.pe_active_fraction);
  reg.set("cycle.makespan_seconds", result.makespan_seconds);
  return result;
}

}  // namespace mnsim::arch
