#include "arch/computation_unit.hpp"

#include <stdexcept>

#include "circuit/adc.hpp"
#include "circuit/dac.hpp"
#include "circuit/decoder.hpp"
#include "circuit/logic.hpp"

namespace mnsim::arch {

circuit::Ppa UnitReport::total() const {
  circuit::Ppa p;
  p.area = area;
  p.latency = pass_latency;
  p.leakage_power = leakage_power;
  p.dynamic_power =
      pass_latency > 0 ? dynamic_energy_per_pass / pass_latency : 0.0;
  return p;
}

UnitReport simulate_unit(int rows_used, int cols_used, int input_bits,
                         int weight_bits, const AcceleratorConfig& config) {
  config.validate();
  if (rows_used <= 0 || cols_used <= 0 ||
      rows_used > config.crossbar_size || cols_used > config.crossbar_size)
    throw std::invalid_argument("simulate_unit: used extent out of range");

  const auto cmos = config.cmos();
  const auto device = config.device();
  const int crossbar_count =
      (config.weight_polarity == 2 && config.signed_two_crossbars) ? 2 : 1;

  UnitReport rep;
  rep.rows_used = rows_used;
  rep.cols_used = cols_used;
  rep.lanes = config.effective_parallelism(cols_used);
  rep.read_cycles = (cols_used + rep.lanes - 1) / rep.lanes;

  // --- crossbars -----------------------------------------------------------
  circuit::CrossbarModel xbar;
  xbar.rows = config.crossbar_size;
  xbar.cols = config.crossbar_size;
  xbar.device = device;
  xbar.cell = config.cell_type;
  xbar.interconnect_node_nm = config.interconnect_node_nm;
  xbar.sense_resistance = units::Ohms{config.sense_resistance};
  xbar.validate();

  // Unused rows get zero input and unused columns stay unsensed, so the
  // computing power scales with the used fraction of the array.
  const double used_fraction =
      static_cast<double>(rows_used) * cols_used /
      (static_cast<double>(xbar.rows) * xbar.cols);
  rep.crossbars.area = crossbar_count * xbar.area().value();
  rep.crossbars.dynamic_power =
      crossbar_count * used_fraction * xbar.compute_power_average().value();
  rep.crossbars.leakage_power = 0.0;
  rep.crossbars.latency = xbar.compute_latency().value();

  // --- input peripherals (shared by both polarity crossbars) ---------------
  circuit::DacModel dac{input_bits, cmos};
  dac.validate();
  rep.dacs = dac.ppa().times(rows_used);

  circuit::DecoderModel dec{config.crossbar_size,
                            circuit::DecoderKind::kComputationOriented,
                            cmos};
  dec.validate();
  rep.decoders = dec.ppa().times(crossbar_count);

  // --- read path ------------------------------------------------------------
  const int adc_bits = circuit::AdcModel::required_bits(
      input_bits, weight_bits, rows_used, config.output_bits);
  circuit::AdcModel adc{config.adc_kind, adc_bits,
                        units::Hertz{config.adc_clock}, cmos};
  adc.validate();
  rep.adcs = adc.ppa().times(rep.lanes);

  // One column MUX per crossbar per lane selecting among read_cycles
  // columns.
  rep.muxes = circuit::mux_ppa(rep.read_cycles, 1, cmos)
                  .times(static_cast<double>(crossbar_count) * rep.lanes);

  if (crossbar_count == 2) {
    // Analog subtractor merging the two polarities ahead of each ADC.
    rep.subtractors = circuit::subtractor_ppa(adc_bits, cmos).times(rep.lanes);
  }

  // Counter-based MUX controller (Sec. III-C.4).
  int counter_bits = 1;
  while ((1 << counter_bits) < rep.read_cycles) ++counter_bits;
  rep.control = circuit::counter_ppa(counter_bits, cmos);

  // --- roll-up ---------------------------------------------------------------
  rep.area = rep.crossbars.area + rep.dacs.area + rep.decoders.area +
             rep.adcs.area + rep.muxes.area + rep.subtractors.area +
             rep.control.area;
  rep.leakage_power = rep.dacs.leakage_power + rep.decoders.leakage_power +
                      rep.adcs.leakage_power + rep.muxes.leakage_power +
                      rep.subtractors.leakage_power +
                      rep.control.leakage_power;

  // Latency: inputs convert and the decoder opens while the array settles;
  // then read_cycles sequential column groups, each mux-switch + subtract
  // + ADC conversion.
  rep.fixed_latency = dac.conversion_latency().value() +
                      rep.decoders.latency +
                      rep.crossbars.latency;
  rep.cycle_latency = rep.muxes.latency + rep.subtractors.latency +
                      adc.conversion_latency().value();
  rep.pass_latency =
      rep.fixed_latency + rep.read_cycles * rep.cycle_latency;

  // Dynamic energy of one pass: one input conversion per used row, the
  // crossbar conducting for the whole pass, one ADC conversion per lane
  // per cycle, and the switching of the digital read path.
  rep.crossbar_energy =
      rep.crossbars.dynamic_power *
      (rep.crossbars.latency + rep.read_cycles * rep.cycle_latency);
  rep.dac_energy = rows_used * dac.conversion_energy().value();
  rep.adc_energy = static_cast<double>(rep.read_cycles) * rep.lanes *
                   adc.conversion_energy().value();
  rep.digital_energy =
      (rep.muxes.dynamic_power * rep.muxes.latency +
       rep.subtractors.dynamic_power * rep.subtractors.latency +
       rep.control.dynamic_power * rep.control.latency +
       rep.decoders.dynamic_power * rep.decoders.latency) *
      rep.read_cycles;
  rep.dynamic_energy_per_pass = rep.crossbar_energy + rep.dac_energy +
                                rep.adc_energy + rep.digital_energy;
  return rep;
}

}  // namespace mnsim::arch
