// Cycle-level discrete-event simulation of the accelerator dataflow.
//
// The analytic pipeline model (arch/pipeline.*) and the pass-level trace
// (arch/trace_sim.*) assume every operand is available the instant a
// bank needs it. This engine generalizes the trace walker into
// tile-granular fill / compute / drain events against an explicit memory
// hierarchy: per-bank double-buffered scratchpads (ifmap / filter /
// ofmap; arch/scratchpad.hpp) in front of a backing store of bounded
// bandwidth, under a configurable dataflow (weight- / input- /
// output-stationary) and fill policy (prefetch vs demand). One tile is
// one matrix-vector pass; within a bank tiles execute in order on one
// PE, and across banks tile k consumes the upstream warm-up plus the
// proportional streamed share — the same dependency rule the trace
// simulator uses, except data counts as available only once its drain
// transfer has landed downstream.
//
// Schedules are computed in integer cycles (clock auto-derived so the
// shortest pass spans kAutoCyclesPerPass cycles, or pinned by [cycle]
// Clock_GHz), which keeps the engine a pure integer function of its
// inputs: bit-identical at any thread count, so DSE sharding over
// cycle-mode points merges exactly (docs/PERFORMANCE.md).
//
// Every non-compute cycle inside a bank's active window is attributed to
// exactly one stall bucket by successive maxima:
//   dependency stall — upstream data not yet drained,
//   fill stall       — ifmap transfer still in flight (bandwidth or the
//                      demand policy),
//   drain stall      — ofmap slot still draining (backpressure);
// outside the window the PE is idle. span == busy + the three stalls.
#pragma once

#include "arch/accelerator.hpp"
#include "arch/scratchpad.hpp"

namespace mnsim::arch {

// Auto-clock granularity: the shortest pass maps to this many cycles,
// bounding quantization error of the makespan well under the 1% the
// cycle/analytic cross-check test budgets.
inline constexpr long kAutoCyclesPerPass = 1024;

struct CycleBankStats {
  long tiles = 0;                  // matrix-vector passes scheduled
  long compute_cycles_per_tile = 0;
  long start_cycle = 0;            // first compute start
  long finish_cycle = 0;           // last compute end
  long busy_cycles = 0;            // tiles * compute_cycles_per_tile
  long dependency_stall_cycles = 0;
  long fill_stall_cycles = 0;
  long drain_stall_cycles = 0;
  long idle_cycles = 0;            // makespan outside [start, finish]
  double utilization = 0.0;        // busy / span; 0 for idle banks

  // Scratchpad sizing and backing-store traffic.
  long ifmap_capacity_tiles = 0;
  long ofmap_capacity_tiles = 0;
  double ifmap_bytes = 0.0;        // on-timeline fill traffic
  double ofmap_bytes = 0.0;        // on-timeline drain traffic
  double filter_bytes = 0.0;       // one-time weight image (off-timeline)
  long bus_busy_cycles = 0;        // backing-bus occupancy
  double bus_utilization = 0.0;    // bus busy / makespan

  // Residency fallbacks: input-/output-stationary banks whose sample
  // does not fit the scratchpad stream instead (MN-CYC-005 warning).
  bool resident_ifmap = false;
  bool resident_ofmap = false;

  [[nodiscard]] long span_cycles() const { return finish_cycle - start_cycle; }
  [[nodiscard]] long stall_cycles() const {
    return dependency_stall_cycles + fill_stall_cycles + drain_stall_cycles;
  }
};

enum class TilePhase { kFill, kCompute, kDrain };

struct TileEvent {
  int bank = 0;
  long tile = 0;
  TilePhase phase = TilePhase::kCompute;
  long start_cycle = 0;
  long end_cycle = 0;
};

struct CycleSimResult {
  double clock_hz = 0.0;           // cycle duration = 1 / clock_hz
  Dataflow dataflow = Dataflow::kWeightStationary;
  FillPolicy fill_policy = FillPolicy::kPrefetch;

  long makespan_cycles = 0;        // last compute or drain, any bank
  double makespan_seconds = 0.0;
  long total_tiles = 0;
  long total_busy_cycles = 0;
  long total_stall_cycles = 0;
  double backing_traffic_bytes = 0.0;  // on-timeline fills + drains
  double weight_image_bytes = 0.0;     // one-time programming traffic
  // PE occupancy over banks * makespan: scheduled counts a bank's whole
  // active window (busy + stalled), active counts compute only.
  double pe_scheduled_fraction = 0.0;
  double pe_active_fraction = 0.0;
  // Aggregate stall share of the active windows: stalls / (busy+stalls).
  double stall_fraction = 0.0;

  std::vector<CycleBankStats> banks;
  // The first `cycle.Max_Events` events, for inspection/plotting.
  std::vector<TileEvent> events;
  // Non-blocking findings (e.g. MN-CYC-005 residency fallbacks);
  // pre-flight errors throw check::CheckError instead.
  std::vector<check::Diagnostic> diagnostics;
};

// Simulates the report's banks under config's [cycle] section (sizes,
// bandwidth, dataflow, fill policy, clock). Throws check::CheckError
// with MN-CYC-* diagnostics on malformed inputs (docs/DIAGNOSTICS.md).
CycleSimResult simulate_cycles(const AcceleratorReport& report,
                               const AcceleratorConfig& config);

}  // namespace mnsim::arch
