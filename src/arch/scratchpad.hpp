// Memory-hierarchy building blocks for the cycle-level simulator.
//
// The cycle engine (arch/cycle_sim.*) models each computation bank with
// three scratchpads (ifmap / filter / ofmap) in front of one backing
// store of bounded bandwidth. This header holds the pieces the engine
// schedules against:
//   * Dataflow / FillPolicy — the [cycle] configuration vocabulary
//     (weight- / input- / output-stationary, prefetch vs demand fills),
//   * BackingChannel — a bank's backing bus, serializing fill and drain
//     transfers at a fixed bytes-per-cycle rate,
//   * Scratchpad — a tile-granular circular buffer: a fill for tile k
//     may only land once the tile occupying its slot (k - capacity) has
//     been consumed. Capacity >= 2 makes it a double buffer (fills
//     overlap compute); capacity 1 degenerates to strict alternation.
// Everything here works in integer cycles so schedules are exact and
// bit-identical across thread counts (docs/PERFORMANCE.md).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mnsim::arch {

// Which operand the bank keeps resident across its matrix-vector passes.
// Weight-stationary is the memristor reality (weights live in the
// crossbar cells); input-/output-stationary buffer the whole sample's
// ifmap / ofmap in the scratchpad and trade pipeline overlap for
// backing-store traffic batching (docs/PERFORMANCE.md).
enum class Dataflow { kWeightStationary, kInputStationary, kOutputStationary };

// When an ifmap tile's fill transfer may start: prefetch lets fills run
// ahead of the consuming compute (bounded by the scratchpad capacity);
// demand starts each fill only once the PE has finished the previous
// tile, serializing transfer and compute.
enum class FillPolicy { kPrefetch, kDemand };

[[nodiscard]] const char* dataflow_name(Dataflow dataflow);
[[nodiscard]] const char* fill_policy_name(FillPolicy policy);
// Accepts the config spellings ("weight_stationary" / "ws", ...).
// Returns nullopt for unknown names.
[[nodiscard]] std::optional<Dataflow> parse_dataflow(std::string_view name);
[[nodiscard]] std::optional<FillPolicy> parse_fill_policy(
    std::string_view name);

// One bank's backing bus: transfers are serialized in issue order at a
// fixed rate, each occupying at least one cycle. Tracks total occupied
// cycles for the achieved-bandwidth statistics.
class BackingChannel {
 public:
  explicit BackingChannel(double bytes_per_cycle);

  // Schedules a transfer of `bytes` starting no earlier than `earliest`
  // (and not before the previous transfer finished); returns the cycle
  // the transfer completes.
  long transfer(long earliest, double bytes);

  [[nodiscard]] long busy_until() const { return busy_until_; }
  [[nodiscard]] long busy_cycles() const { return busy_cycles_; }

 private:
  double bytes_per_cycle_;
  long busy_until_ = 0;
  long busy_cycles_ = 0;
};

// Tile-granular circular scratchpad. Slots are tracked by the cycle the
// previous occupant was released: a fill targeting tile k reuses the
// slot of tile k - capacity and must wait for its release.
class Scratchpad {
 public:
  // capacity_tiles must be >= 1 (the engine pre-flights this with
  // MN-CYC-003 before constructing one).
  explicit Scratchpad(long capacity_tiles);

  [[nodiscard]] long capacity_tiles() const {
    return static_cast<long>(release_.size());
  }
  // Earliest cycle a fill for `tile` has a free slot (0 for the first
  // `capacity` tiles).
  [[nodiscard]] long slot_free(long tile) const;
  // Records that `tile`'s slot content was consumed / drained at `cycle`.
  void release(long tile, long cycle);

 private:
  std::vector<long> release_;
};

}  // namespace mnsim::arch
