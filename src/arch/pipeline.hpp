// Inter-layer pipeline analysis (paper Sec. III-B.5, VII-D and the
// "inner-layer pipeline structure" future-work item).
//
// Multi-layer memristor accelerators pipeline across computation banks:
// conv banks stream matrix-vector passes through the Eq. 6 line buffers,
// so all banks work concurrently once warmed up. This module turns an
// AcceleratorReport into pipeline metrics:
//   * cycle time         — the slowest single pass (the paper's
//                          "latency of each pipeline cycle"),
//   * fill latency       — time until the first sample emerges (each bank
//                          must run its warm-up passes before the next
//                          can start),
//   * sample interval    — steady-state time between output samples
//                          (set by the bank with the most work), and
//   * per-bank utilization.
#pragma once

#include "arch/accelerator.hpp"

namespace mnsim::arch {

struct PipelineReport {
  double cycle_time = 0.0;       // max pass latency across banks [s]
  double fill_latency = 0.0;     // first-sample latency [s]
  double sample_interval = 0.0;  // steady-state seconds per sample
  double throughput = 0.0;       // samples per second
  int bottleneck_bank = -1;      // bank setting the sample interval
  std::vector<double> utilization;  // per bank, in (0, 1]
};

PipelineReport analyze_pipeline(const AcceleratorReport& report);

}  // namespace mnsim::arch
