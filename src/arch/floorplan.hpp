// Physical floorplan estimation.
//
// MNSIM's area model sums module areas; a designer also needs the rough
// physical shape: unit tiles arranged in the bank's block grid, banks
// placed in a row (the cascaded dataflow of Fig. 1b), and the Fig. 6
// layout-fill coefficient applied on top of the raw cell areas. The
// estimates here feed back the inter-bank wire lengths used to sanity-
// check that accelerator-level routing stays negligible next to the
// array-level interconnect the accuracy model covers.
#pragma once

#include "arch/accelerator.hpp"

namespace mnsim::arch {

struct UnitFootprint {
  double width = 0.0;   // [m]
  double height = 0.0;  // [m]
  double area = 0.0;    // [m^2] including the fill coefficient
};

struct BankFootprint {
  UnitFootprint unit;
  int grid_rows = 0;     // block rows of units (synapse sub-banks)
  int grid_cols = 0;
  double width = 0.0;    // [m]
  double height = 0.0;   // [m] includes the peripheral strip
  double area = 0.0;
  double peripheral_height = 0.0;  // adder tree / neuron / buffer strip
};

struct FloorplanReport {
  std::vector<BankFootprint> banks;
  double width = 0.0;    // banks abut horizontally
  double height = 0.0;   // tallest bank
  double area = 0.0;     // bounding box
  double utilization = 0.0;  // summed module area / bounding box
  // Total inter-bank route length (bank centre to next bank centre).
  double interbank_wire_length = 0.0;

  [[nodiscard]] double aspect_ratio() const {
    return height > 0 ? width / height : 0.0;
  }
};

// `fill_coefficient` is the layout/estimate ratio of Fig. 6 (>= 1).
FloorplanReport estimate_floorplan(const AcceleratorReport& report,
                                   double fill_coefficient = 1.5);

}  // namespace mnsim::arch
