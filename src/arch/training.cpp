#include "arch/training.hpp"

#include <cmath>
#include <stdexcept>

namespace mnsim::arch {

void TrainingConfig::validate() const {
  if (samples <= 0 || epochs <= 0 || batch_size <= 0)
    throw std::invalid_argument("TrainingConfig: counts must be positive");
  if (update_fraction <= 0 || update_fraction > 1)
    throw std::invalid_argument("TrainingConfig: update fraction in (0, 1]");
  if (pulses_per_update <= 0 || backward_cost_factor < 0)
    throw std::invalid_argument("TrainingConfig: pulses / backward factor");
}

TrainingReport estimate_training(const nn::Network& network,
                                 const AcceleratorConfig& config,
                                 const TrainingConfig& training) {
  training.validate();
  const auto inference = simulate_accelerator(network, config);
  const auto device = config.device();

  TrainingReport rep;
  const long total_samples =
      training.samples * static_cast<long>(training.epochs);
  const long batches =
      (total_samples + training.batch_size - 1) / training.batch_size;

  // Forward + backward analog work.
  rep.compute_energy = inference.energy_per_sample *
                       (1.0 + training.backward_cost_factor) *
                       static_cast<double>(total_samples);
  rep.compute_latency = inference.sample_latency *
                        (1.0 + training.backward_cost_factor) *
                        static_cast<double>(total_samples);

  // Weight updates. The touched cells per update; each touch costs
  // `pulses_per_update` pulses, and the polarity pair doubles the cells.
  const double cells_per_weight_pair =
      config.weight_polarity == 2 ? 2.0 : 1.0;
  const double touched_per_update =
      training.update_fraction *
      static_cast<double>(network.total_weights()) * cells_per_weight_pair;
  rep.weight_updates =
      static_cast<long>(touched_per_update * static_cast<double>(batches));
  rep.update_energy = static_cast<double>(rep.weight_updates) *
                      training.pulses_per_update *
                      device.write_pulse_energy().value();

  // Writes are memory-style: one row of each crossbar at a time, but all
  // crossbars program in parallel. Rows touched per crossbar per update:
  const double rows_per_crossbar =
      training.update_fraction * config.crossbar_size;
  rep.update_latency = static_cast<double>(batches) * rows_per_crossbar *
                       training.pulses_per_update *
                       device.write_latency.value();

  rep.total_energy = rep.compute_energy + rep.update_energy;
  rep.total_latency = rep.compute_latency + rep.update_latency;

  // Endurance: every touched cell sees pulses_per_update writes per batch.
  const double writes_per_cell = training.update_fraction *
                                 static_cast<double>(batches) *
                                 training.pulses_per_update;
  rep.endurance_fraction = writes_per_cell / device.endurance;
  if (rep.endurance_fraction <= 0) {
    rep.surviving_epochs = training.epochs;
  } else {
    const double epochs_at_budget =
        training.epochs / rep.endurance_fraction;
    rep.surviving_epochs = static_cast<long>(std::min<double>(
        training.epochs, std::floor(epochs_at_budget)));
  }
  return rep;
}

}  // namespace mnsim::arch
