#include "arch/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mnsim::arch {

FloorplanReport estimate_floorplan(const AcceleratorReport& report,
                                   double fill_coefficient) {
  if (report.banks.empty())
    throw std::invalid_argument("estimate_floorplan: no banks");
  if (!(fill_coefficient >= 1.0))
    throw std::invalid_argument(
        "estimate_floorplan: fill coefficient must be >= 1");

  FloorplanReport plan;
  double module_area = 0.0;

  for (const auto& bank : report.banks) {
    BankFootprint fp;
    fp.grid_rows = bank.mapping.row_blocks;
    fp.grid_cols = bank.mapping.col_blocks;

    // Unit tile: square of the filled unit area (crossbars sit beside
    // their peripherals inside the tile).
    fp.unit.area = bank.unit.area * fill_coefficient;
    fp.unit.width = std::sqrt(fp.unit.area);
    fp.unit.height = fp.unit.width;

    // The peripheral strip (adder trees, neurons, pooling, buffers) runs
    // along the bottom of the unit grid.
    const double peripheral_area =
        (bank.adder_tree.area + bank.neurons.area + bank.pooling.area +
         bank.pooling_buffer.area + bank.output_buffer.area) *
        fill_coefficient;
    fp.width = fp.grid_cols * fp.unit.width;
    fp.peripheral_height = fp.width > 0 ? peripheral_area / fp.width : 0.0;
    fp.height = fp.grid_rows * fp.unit.height + fp.peripheral_height;
    fp.area = fp.width * fp.height;

    module_area += bank.area * fill_coefficient;
    plan.width += fp.width;
    plan.height = std::max(plan.height, fp.height);
    plan.banks.push_back(fp);
  }

  plan.area = plan.width * plan.height;
  plan.utilization = plan.area > 0 ? module_area / plan.area : 0.0;

  // Inter-bank routing: centre-to-centre of adjacent banks.
  for (std::size_t b = 0; b + 1 < plan.banks.size(); ++b) {
    plan.interbank_wire_length +=
        0.5 * (plan.banks[b].width + plan.banks[b + 1].width);
  }
  return plan;
}

}  // namespace mnsim::arch
