// Memory-mode operation of a computation unit (paper Sec. II-C).
//
// The same crossbar also serves as a non-volatile memory: READ selects a
// single cell through memory-oriented decoders; WRITE programs one row at
// a time through the write drivers and the program-and-verify loop.
// These models quantify the difference the paper emphasizes between the
// memory-oriented and computation-oriented operation of the identical
// array: READ touches one cell where COMPUTE activates all of them, and
// the decoder gains a NOR stage in compute mode (Fig. 4).
#pragma once

#include "arch/params.hpp"
#include "circuit/module.hpp"

namespace mnsim::arch {

struct MemoryModeReport {
  // Single-cell READ.
  double read_latency = 0.0;   // decode + cell settle + sense [s]
  double read_energy = 0.0;    // [J]
  double read_power = 0.0;     // [W] while reading

  // One-row WRITE (all columns in parallel, program-and-verify).
  double row_write_latency = 0.0;  // [s]
  double row_write_energy = 0.0;   // [J]

  // Whole-array programming (rows sequential).
  double array_write_latency = 0.0;
  double array_write_energy = 0.0;

  // The compute pass of the same array, for contrast.
  double compute_latency = 0.0;
  double compute_energy = 0.0;

  // Cells touched per operation — the paper's core observation.
  long cells_per_read = 1;
  long cells_per_compute = 0;
};

// Select-path overhead of one row write: the driver latency already
// contains one device write pulse, so the pulse is subtracted to isolate
// the decode/level-shift path. Slow-write devices (pulse > driver
// latency) clamp at zero — the program-and-verify term carries the
// pulses, and a negative overhead would understate the row latency.
double write_select_overhead(double driver_latency, double write_pulse);

// Evaluates one crossbar of `config.crossbar_size` in both modes.
MemoryModeReport simulate_memory_mode(const AcceleratorConfig& config,
                                      int input_bits = 8,
                                      int weight_bits = 4);

}  // namespace mnsim::arch
