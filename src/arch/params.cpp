#include "arch/params.hpp"

#include <algorithm>
#include <stdexcept>

#include "tech/interconnect.hpp"

namespace mnsim::arch {

tech::MemristorModel AcceleratorConfig::device() const {
  tech::MemristorModel m = tech::memristor_by_name(memristor_model);
  m.r_min = units::Ohms{resistance_min};
  m.r_max = units::Ohms{resistance_max};
  m.sigma = device_sigma;
  m.validate();
  return m;
}

tech::CmosTech AcceleratorConfig::cmos() const {
  return tech::cmos_tech(cmos_node_nm);
}

spice::DcOptions AcceleratorConfig::solver_options() const {
  spice::DcOptions opt;
  opt.cg_tolerance = solver_cg_tolerance;
  opt.cg_max_iterations =
      static_cast<std::size_t>(std::max<long>(solver_cg_max_iterations, 0));
  opt.allow_cg_retry = solver_allow_fallback;
  opt.allow_dense_fallback = solver_allow_fallback;
  opt.allow_schur = solver_structured;
  opt.preflight = check_preflight;
  return opt;
}

int AcceleratorConfig::effective_parallelism(int columns) const {
  if (columns <= 0)
    throw std::invalid_argument("effective_parallelism: columns");
  if (parallelism <= 0) return columns;  // 0 means all parallel (Table I)
  return std::min(parallelism, columns);
}

circuit::NeuronKind AcceleratorConfig::neuron_for(nn::NetworkType type) {
  switch (type) {
    case nn::NetworkType::kAnn:
      return circuit::NeuronKind::kSigmoid;
    case nn::NetworkType::kSnn:
      return circuit::NeuronKind::kIntegrateFire;
    case nn::NetworkType::kCnn:
      return circuit::NeuronKind::kRelu;
  }
  throw std::logic_error("neuron_for: unreachable");
}

AcceleratorConfig AcceleratorConfig::from_config(const util::Config& cfg) {
  AcceleratorConfig c;
  if (cfg.has("Interface_Number")) {
    auto v = cfg.get_int_list("Interface_Number");
    if (v.size() != 2)
      throw util::ConfigError("Interface_Number needs [in, out]");
    c.interface_in = static_cast<int>(v[0]);
    c.interface_out = static_cast<int>(v[1]);
  }
  c.crossbar_size =
      static_cast<int>(cfg.get_int_or("Crossbar_Size", c.crossbar_size));
  c.pooling_size =
      static_cast<int>(cfg.get_int_or("Pooling_Size", c.pooling_size));
  c.weight_polarity =
      static_cast<int>(cfg.get_int_or("Weight_Polarity", c.weight_polarity));
  c.cmos_node_nm =
      static_cast<int>(cfg.get_int_or("CMOS_Tech", c.cmos_node_nm));
  c.interconnect_node_nm = static_cast<int>(
      cfg.get_int_or("Interconnect_Tech", c.interconnect_node_nm));
  c.parallelism =
      static_cast<int>(cfg.get_int_or("Parallelism_Degree", c.parallelism));
  if (cfg.has("Cell_Type")) {
    const std::string cell = cfg.get_string("Cell_Type");
    if (cell == "1T1R")
      c.cell_type = tech::CellType::k1T1R;
    else if (cell == "0T1R")
      c.cell_type = tech::CellType::k0T1R;
    else
      throw util::ConfigError("Cell_Type must be 1T1R or 0T1R, got " + cell);
  }
  c.memristor_model = cfg.get_string_or("Memristor_Model", c.memristor_model);
  if (cfg.has("Resistance_Range")) {
    auto v = cfg.get_list("Resistance_Range");
    if (v.size() != 2)
      throw util::ConfigError("Resistance_Range needs [min, max]");
    c.resistance_min = v[0];
    c.resistance_max = v[1];
  }
  c.output_bits =
      static_cast<int>(cfg.get_int_or("Output_Bits", c.output_bits));
  c.sense_resistance =
      cfg.get_double_or("Sense_Resistance", c.sense_resistance);
  c.device_sigma = cfg.get_double_or("Device_Sigma", c.device_sigma);
  c.pipelined = cfg.get_bool_or("Pipelined", c.pipelined);

  // [fault] section (docs/ROBUSTNESS.md).
  c.fault.stuck_at_zero_rate = cfg.get_double_or(
      "fault.Stuck_At_0_Rate", c.fault.stuck_at_zero_rate);
  c.fault.stuck_at_one_rate = cfg.get_double_or(
      "fault.Stuck_At_1_Rate", c.fault.stuck_at_one_rate);
  c.fault.broken_wordline_rate = cfg.get_double_or(
      "fault.Wordline_Defect_Rate", c.fault.broken_wordline_rate);
  c.fault.broken_bitline_rate = cfg.get_double_or(
      "fault.Bitline_Defect_Rate", c.fault.broken_bitline_rate);
  c.fault.retention_time =
      cfg.get_double_or("fault.Retention_Time", c.fault.retention_time);
  c.fault.seed = static_cast<std::uint32_t>(
      cfg.get_int_or("fault.Seed", static_cast<long>(c.fault.seed)));
  c.fault.circuit_check =
      cfg.get_bool_or("fault.Circuit_Check", c.fault.circuit_check);
  c.fault.circuit_check_size = static_cast<int>(
      cfg.get_int_or("fault.Circuit_Check_Size", c.fault.circuit_check_size));

  // [solver] section (docs/ROBUSTNESS.md).
  c.solver_cg_tolerance =
      cfg.get_double_or("solver.CG_Tolerance", c.solver_cg_tolerance);
  c.solver_cg_max_iterations = cfg.get_int_or("solver.CG_Max_Iterations",
                                              c.solver_cg_max_iterations);
  c.solver_allow_fallback =
      cfg.get_bool_or("solver.Allow_Fallback", c.solver_allow_fallback);
  c.solver_structured =
      cfg.get_bool_or("solver.Structured", c.solver_structured);

  // [parallel] section (docs/PERFORMANCE.md).
  c.parallel_threads = static_cast<int>(
      cfg.get_int_or("parallel.Threads", c.parallel_threads));

  // [check] section (docs/DIAGNOSTICS.md).
  c.check_preflight = cfg.get_bool_or("check.Enabled", c.check_preflight);
  c.check_warnings_as_errors = cfg.get_bool_or("check.Warnings_As_Errors",
                                               c.check_warnings_as_errors);
  c.check_wire_drop_warning = cfg.get_double_or("check.Wire_Drop_Warning",
                                                c.check_wire_drop_warning);

  // [sweep] section (docs/ROBUSTNESS.md).
  if (cfg.has("sweep.Checkpoint"))
    c.sweep_checkpoint = cfg.get_string("sweep.Checkpoint");
  c.sweep_shard_index = static_cast<int>(
      cfg.get_int_or("sweep.Shard_Index", c.sweep_shard_index));
  c.sweep_shard_count = static_cast<int>(
      cfg.get_int_or("sweep.Shard_Count", c.sweep_shard_count));
  c.sweep_resume = cfg.get_bool_or("sweep.Resume", c.sweep_resume);
  c.sweep_deadline_ms =
      cfg.get_double_or("sweep.Point_Deadline_Ms", c.sweep_deadline_ms);
  c.sweep_max_attempts = static_cast<int>(
      cfg.get_int_or("sweep.Max_Attempts", c.sweep_max_attempts));

  // [cycle] section (docs/PERFORMANCE.md).
  c.cycle_enabled = cfg.get_bool_or("cycle.Enabled", c.cycle_enabled);
  if (cfg.has("cycle.Dataflow")) {
    const std::string flow = cfg.get_string("cycle.Dataflow");
    const auto parsed = parse_dataflow(flow);
    if (!parsed)
      throw util::ConfigError(
          "cycle.Dataflow must be weight_stationary, input_stationary or "
          "output_stationary, got " + flow);
    c.cycle_dataflow = *parsed;
  }
  if (cfg.has("cycle.Fill_Policy")) {
    const std::string policy = cfg.get_string("cycle.Fill_Policy");
    const auto parsed = parse_fill_policy(policy);
    if (!parsed)
      throw util::ConfigError(
          "cycle.Fill_Policy must be prefetch or demand, got " + policy);
    c.cycle_fill_policy = *parsed;
  }
  c.cycle_ifmap_kb = cfg.get_double_or("cycle.Ifmap_KB", c.cycle_ifmap_kb);
  c.cycle_filter_kb = cfg.get_double_or("cycle.Filter_KB", c.cycle_filter_kb);
  c.cycle_ofmap_kb = cfg.get_double_or("cycle.Ofmap_KB", c.cycle_ofmap_kb);
  c.cycle_bandwidth_gbps =
      cfg.get_double_or("cycle.Bandwidth_GBps", c.cycle_bandwidth_gbps);
  c.cycle_clock_ghz =
      cfg.get_double_or("cycle.Clock_GHz", c.cycle_clock_ghz);
  c.cycle_max_events =
      cfg.get_int_or("cycle.Max_Events", c.cycle_max_events);

  // [trace] section (docs/OBSERVABILITY.md).
  c.trace_enabled = cfg.get_bool_or("trace.Enabled", c.trace_enabled);
  if (cfg.has("trace.Output"))
    c.trace_output = cfg.get_string("trace.Output");
  c.trace_metrics = cfg.get_bool_or("trace.Metrics", c.trace_metrics);

  c.validate();
  return c;
}

void AcceleratorConfig::validate() const {
  if (interface_in <= 0 || interface_out <= 0)
    throw std::invalid_argument("AcceleratorConfig: interface ports");
  if (crossbar_size < 2 || (crossbar_size & (crossbar_size - 1)) != 0)
    throw std::invalid_argument(
        "AcceleratorConfig: crossbar size must be a power of two >= 2");
  if (pooling_size < 1)
    throw std::invalid_argument("AcceleratorConfig: pooling size");
  if (weight_polarity != 1 && weight_polarity != 2)
    throw std::invalid_argument("AcceleratorConfig: weight polarity 1 or 2");
  if (parallelism < 0)
    throw std::invalid_argument("AcceleratorConfig: parallelism");
  if (!(resistance_min > 0) || !(resistance_max > resistance_min))
    throw std::invalid_argument("AcceleratorConfig: resistance range");
  if (output_bits < 1 || output_bits > 14)
    throw std::invalid_argument("AcceleratorConfig: output bits");
  if (!(solver_cg_tolerance > 0) || solver_cg_max_iterations < 0)
    throw std::invalid_argument("AcceleratorConfig: solver options");
  if (parallel_threads < 0)
    throw std::invalid_argument("AcceleratorConfig: parallel threads");
  if (!(check_wire_drop_warning >= 0))
    throw std::invalid_argument("AcceleratorConfig: wire-drop threshold");
  if (sweep_shard_count < 1 || sweep_shard_index < 0 ||
      sweep_shard_index >= sweep_shard_count)
    throw std::invalid_argument(
        "AcceleratorConfig: sweep shard must satisfy 0 <= index < count");
  if (!(cycle_ifmap_kb > 0) || !(cycle_filter_kb > 0) ||
      !(cycle_ofmap_kb > 0))
    throw std::invalid_argument(
        "AcceleratorConfig: cycle scratchpad sizes must be positive");
  if (!(cycle_bandwidth_gbps > 0))
    throw std::invalid_argument(
        "AcceleratorConfig: cycle bandwidth must be positive");
  if (!(cycle_clock_ghz >= 0))
    throw std::invalid_argument("AcceleratorConfig: cycle clock");
  if (cycle_max_events < 0)
    throw std::invalid_argument("AcceleratorConfig: cycle event cap");
  if (!(sweep_deadline_ms >= 0))
    throw std::invalid_argument("AcceleratorConfig: sweep deadline");
  if (sweep_max_attempts < 1)
    throw std::invalid_argument("AcceleratorConfig: sweep max attempts");
  fault.validate();
  (void)cmos();                    // range check
  (void)device();                  // device validation
  (void)tech::interconnect_tech(interconnect_node_nm);
}

}  // namespace mnsim::arch
