// Weight-matrix to crossbar mapping (paper Sec. III-B.1, Eq. 5).
//
// A layer's R x C weight matrix is tiled into crossbar-sized blocks: each
// block becomes one Computation Unit; the units of one block-row share
// input sub-vectors (a synapse sub-bank) and the block-column results are
// merged by the adder tree. When the device stores fewer bits than the
// weight precision, a weight spreads across several cells in neighbouring
// columns (merged with shifters); signed weights double the cell count
// via the chosen polarity method.
#pragma once

#include "arch/params.hpp"
#include "nn/network.hpp"

namespace mnsim::arch {

struct LayerMapping {
  long matrix_rows = 0;      // R: inputs of one matrix-vector product
  long matrix_cols = 0;      // C: layer outputs per product
  int cells_per_weight = 1;  // ceil(weight_bits-1 magnitude bits / device)
  long physical_cols = 0;    // C * cells_per_weight (per polarity)
  int row_blocks = 0;        // synapse sub-banks (adder-tree inputs)
  int col_blocks = 0;        // unit columns
  long unit_count = 0;       // row_blocks * col_blocks
  int rows_used_full = 0;    // rows used in a full (non-edge) unit
  int cols_used_full = 0;
  int rows_used_edge = 0;    // rows used in the last block-row
  int cols_used_edge = 0;
  long crossbars_per_unit = 1;  // 2 when signed weights use two crossbars
  long total_crossbars = 0;
};

// Throws std::invalid_argument for non-weighted layers.
LayerMapping map_layer(const nn::Layer& layer, const nn::Network& network,
                       const AcceleratorConfig& config);

// Cells needed per weight magnitude given the device level count
// (paper Sec. III-B.2: low/high weight bits in multiple crossbars).
int cells_per_weight(int weight_bits, int device_level_bits, int polarity);

}  // namespace mnsim::arch
