#include "arch/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace mnsim::arch {

PipelineReport analyze_pipeline(const AcceleratorReport& report) {
  obs::Span span("arch.pipeline");
  if (report.banks.empty())
    throw std::invalid_argument("analyze_pipeline: no banks");

  PipelineReport pipe;
  pipe.utilization.reserve(report.banks.size());

  double busiest = 0.0;
  for (std::size_t b = 0; b < report.banks.size(); ++b) {
    const auto& bank = report.banks[b];
    pipe.cycle_time = std::max(pipe.cycle_time, bank.pass_latency);
    const double work =
        static_cast<double>(bank.iterations) * bank.pass_latency;
    if (work > busiest) {
      busiest = work;
      pipe.bottleneck_bank = static_cast<int>(b);
    }
    // A bank cannot warm up for more passes than it runs: clamp so
    // warmup-heavier-than-iterations banks (tiny feature maps with large
    // line buffers) don't inflate the first-sample latency.
    pipe.fill_latency +=
        static_cast<double>(std::min(bank.warmup_passes, bank.iterations)) *
        bank.pass_latency;
  }
  pipe.sample_interval = busiest;
  pipe.throughput = busiest > 0 ? 1.0 / busiest : 0.0;
  for (const auto& bank : report.banks) {
    const double work =
        static_cast<double>(bank.iterations) * bank.pass_latency;
    pipe.utilization.push_back(busiest > 0 ? work / busiest : 0.0);
  }
  return pipe;
}

}  // namespace mnsim::arch
