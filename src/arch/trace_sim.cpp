#include "arch/trace_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "check/diagnostic.hpp"

namespace mnsim::arch {

TraceSimResult simulate_trace(const AcceleratorReport& report,
                              long max_recorded_events) {
  // Pre-flight over the input report: the trace walks pass latencies and
  // iteration counts, so a malformed report (no banks, non-finite or
  // negative timing) would loop forever or emit NaN schedules. Refuse
  // with coded diagnostics instead.
  {
    check::DiagnosticList diags;
    if (report.banks.empty())
      diags.emit("MN-TRC-001", check::Severity::kError,
                 "trace simulation needs at least one computation bank");
    if (max_recorded_events < 0)
      diags.emit("MN-TRC-002", check::Severity::kError,
                 "event cap must be non-negative, got " +
                     std::to_string(max_recorded_events));
    for (std::size_t b = 0; b < report.banks.size(); ++b) {
      const auto& bank = report.banks[b];
      if (!(bank.pass_latency >= 0) ||
          !(bank.pass_latency < 1e30)) {  // rejects NaN and overflow
        diags.emit("MN-TRC-003", check::Severity::kError,
                   "bank " + std::to_string(b) +
                       " has a non-finite or negative pass latency")
            .location = "bank " + std::to_string(b);
      }
      if (bank.iterations < 0) {
        diags.emit("MN-TRC-004", check::Severity::kError,
                   "bank " + std::to_string(b) +
                       " has a negative iteration count")
            .location = "bank " + std::to_string(b);
      }
    }
    if (diags.has_errors()) throw check::CheckError(std::move(diags));
  }

  const std::size_t bank_count = report.banks.size();
  TraceSimResult result;
  result.bank_start.assign(bank_count, 0.0);
  result.bank_finish.assign(bank_count, 0.0);
  result.bank_busy.assign(bank_count, 0.0);
  result.bank_utilization.assign(bank_count, 0.0);

  // finish_time[b][k] is only needed for the *consumer's* ready query;
  // store each upstream bank's completed-pass finish times compactly as
  // the time its pass index p completed (passes run back-to-back once
  // started, but starts can stall on upstream data, so keep the vector).
  std::vector<std::vector<double>> finish_times(bank_count);

  for (std::size_t b = 0; b < bank_count; ++b) {
    const auto& bank = report.banks[b];
    const long passes = bank.iterations;
    const double pass_latency = bank.pass_latency;
    result.total_passes += passes;
    result.serial_makespan += static_cast<double>(passes) * pass_latency;
    finish_times[b].resize(static_cast<std::size_t>(passes));

    const long up_passes =
        b > 0 ? report.banks[b - 1].iterations : 0;
    const long up_warmup =
        b > 0 ? std::min(report.banks[b - 1].warmup_passes, up_passes) : 0;

    double prev_end = 0.0;
    for (long k = 0; k < passes; ++k) {
      // Upstream data dependency: the producer must have finished its
      // warm-up plus the proportional share feeding this pass.
      double ready = 0.0;
      if (b > 0) {
        const long streamed =
            passes > 1
                ? (k * std::max<long>(up_passes - up_warmup, 0)) /
                      std::max<long>(passes - 1, 1)
                : up_passes - up_warmup;
        const long needed =
            std::min<long>(up_passes, up_warmup + streamed);
        if (needed > 0)
          ready = finish_times[b - 1][static_cast<std::size_t>(needed - 1)];
      }
      const double start = std::max(prev_end, ready);
      const double end = start + pass_latency;
      finish_times[b][static_cast<std::size_t>(k)] = end;
      prev_end = end;

      if (k == 0) result.bank_start[b] = start;
      result.bank_busy[b] += pass_latency;
      if (static_cast<long>(result.events.size()) < max_recorded_events)
        result.events.push_back({static_cast<int>(b), k, start, end});
    }
    result.bank_finish[b] = prev_end;
    const double span = result.bank_finish[b] - result.bank_start[b];
    // span == 0 means the bank never ran (zero passes): it is idle, not
    // perfectly utilized.
    result.bank_utilization[b] = span > 0 ? result.bank_busy[b] / span : 0.0;
    result.makespan = std::max(result.makespan, result.bank_finish[b]);
  }
  return result;
}

}  // namespace mnsim::arch
