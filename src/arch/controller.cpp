#include "arch/controller.hpp"

#include <sstream>

#include "arch/mapper.hpp"

namespace mnsim::arch {

std::string Instruction::to_string() const {
  const char* names[] = {"WRITE", "READ", "COMPUTE"};
  std::ostringstream os;
  os << names[static_cast<int>(opcode)] << " bank=" << bank
     << " unit=" << unit << " addr=" << address << " len=" << length;
  return os.str();
}

std::vector<Instruction> generate_inference_trace(
    const nn::Network& network, const AcceleratorConfig& config) {
  network.validate();
  config.validate();
  std::vector<Instruction> trace;
  int bank = 0;
  for (const auto& layer : network.layers) {
    if (!layer.is_weighted()) continue;
    for (long pass = 0; pass < layer.compute_iterations(); ++pass) {
      Instruction inst;
      inst.opcode = Opcode::kCompute;
      inst.bank = bank;
      inst.unit = -1;  // all units of the bank fire together
      inst.address = pass;
      inst.length = 1;
      trace.push_back(inst);
    }
    ++bank;
  }
  return trace;
}

std::vector<Instruction> generate_program_trace(
    const nn::Network& network, const AcceleratorConfig& config) {
  network.validate();
  std::vector<Instruction> trace;
  int bank = 0;
  for (const auto& layer : network.layers) {
    if (!layer.is_weighted()) continue;
    const LayerMapping m = map_layer(layer, network, config);
    for (long unit = 0; unit < m.unit_count; ++unit) {
      Instruction inst;
      inst.opcode = Opcode::kWrite;
      inst.bank = bank;
      inst.unit = unit;
      inst.address = 0;
      inst.length = static_cast<long>(m.rows_used_full) * m.cols_used_full *
                    m.crossbars_per_unit;
      trace.push_back(inst);
    }
    ++bank;
  }
  return trace;
}

double program_latency(const std::vector<Instruction>& trace,
                       const AcceleratorConfig& config) {
  const auto device = config.device();
  double total = 0.0;
  for (const auto& inst : trace) {
    if (inst.opcode != Opcode::kWrite) continue;
    // Cells written one row at a time; a row of cells programs in
    // parallel across columns, each cell needing up to `levels`
    // incremental pulses (worst case).
    const double rows = static_cast<double>(inst.length) /
                        config.crossbar_size;
    total += rows * device.levels() * device.write_latency.value();
  }
  return total;
}

circuit::Ppa controller_ppa(const AcceleratorConfig& config) {
  const auto cmos = config.cmos();
  // 32-bit instruction register + decode + FSM, ~300 gate equivalents.
  circuit::Ppa p;
  const double gates = 300.0;
  p.area = (gates * cmos.gate_area + 32 * cmos.reg_area).value();
  p.dynamic_power =
      (gates * 0.3 * cmos.gate_energy / units::Seconds{10e-9}).value();
  p.leakage_power =
      (gates * cmos.gate_leakage + 32 * cmos.reg_leakage).value();
  p.latency = (4 * cmos.gate_delay).value();
  return p;
}

}  // namespace mnsim::arch
