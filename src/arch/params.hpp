// MNSIM configuration (paper Table I).
//
// Every design knob is classified into the three hierarchy levels:
// Accelerator (Interface_Number, Network_Depth — the latter comes from
// the nn::Network), Computation Bank (Network_Type, Network_Scale,
// Crossbar_Size, Pooling_Size), and Computation Unit (Weight_Polarity,
// CMOS_Tech, Cell_Type, Memristor_Model, Interconnect_Tech,
// Parallelism_Degree, Resistance_Range). AcceleratorConfig carries them
// all with the paper's defaults and can be populated from an INI-style
// configuration file via from_config.
#pragma once

#include "arch/scratchpad.hpp"
#include "circuit/adc.hpp"
#include "circuit/neuron.hpp"
#include "fault/fault_model.hpp"
#include "nn/network.hpp"
#include "spice/mna.hpp"
#include "tech/cmos_tech.hpp"
#include "tech/memristor.hpp"
#include "util/config.hpp"

namespace mnsim::arch {

struct AcceleratorConfig {
  // --- Accelerator level ---
  int interface_in = 128;    // Interface_Number[0]: input bus lines
  int interface_out = 128;   // Interface_Number[1]: output bus lines
  double bus_clock = 200e6;

  // --- Computation Bank level ---
  int crossbar_size = 128;   // Crossbar_Size
  int pooling_size = 2;      // Pooling_Size (CNN window)
  bool pipelined = true;     // multi-layer accelerators pipeline by default

  // --- Computation Unit level ---
  int weight_polarity = 2;         // 1 = unsigned, 2 = signed weights
  bool signed_two_crossbars = true;  // method (1) two crossbars vs
                                     // method (2) doubled columns
  int cmos_node_nm = 90;           // CMOS_Tech
  tech::CellType cell_type = tech::CellType::k1T1R;  // Cell_Type
  std::string memristor_model = "RRAM";              // Memristor_Model
  int interconnect_node_nm = 28;   // Interconnect_Tech
  int parallelism = 0;             // Parallelism_Degree; 0 = all parallel
  double resistance_min = 500.0;   // Resistance_Range
  double resistance_max = 500e3;
  double sense_resistance = 60.0;
  double device_sigma = 0.0;       // device variation (Sec. VI-D)

  // Read/convert circuit choices (Sec. V-C).
  circuit::AdcKind adc_kind = circuit::AdcKind::kMultiLevelSA;
  double adc_clock = 50e6;
  int output_bits = 8;  // read-circuit quantization (k = 2^output_bits)

  // Hard-defect injection ([fault] section; docs/ROBUSTNESS.md). When any
  // rate is nonzero the per-bank accuracy composes the fault deviation,
  // and circuit_check additionally runs a defect-injected circuit-level
  // solve whose diagnostics land in the report.
  fault::FaultConfig fault;

  // Circuit-level solver knobs ([solver] section): tolerance/budget of
  // the inner CG and whether the graceful-degradation ladder (warm
  // retry -> dense LU) may engage.
  double solver_cg_tolerance = 1e-12;
  long solver_cg_max_iterations = 0;  // 0 = auto
  bool solver_allow_fallback = true;
  // Structure-exploiting (bipartite Schur) rung for crossbar netlists:
  // [solver] Structured. Safe to disable — correctness is unaffected,
  // only sweep throughput.
  bool solver_structured = true;

  // Worker threads for sweep engines (DSE exploration, Monte-Carlo
  // trials): [parallel] Threads. 1 = serial (default), 0 = all hardware
  // threads. Results are bit-identical for any value (per-task RNG
  // streams; docs/PERFORMANCE.md).
  int parallel_threads = 1;

  // Pre-flight static analysis ([check] section; docs/DIAGNOSTICS.md):
  // simulate/explore/solve entries run the semantic analyzer before any
  // numeric work and refuse-with-diagnosis on errors. Warnings ride
  // along in the report; Warnings_As_Errors promotes them. The wire-drop
  // threshold tunes the MN-CFG-005 plausibility warning (fraction of
  // R_min the worst-case column wire may reach).
  bool check_preflight = true;
  bool check_warnings_as_errors = false;
  double check_wire_drop_warning = 0.10;

  // Crash-safe sweep execution ([sweep] section; docs/ROBUSTNESS.md):
  // Checkpoint names the append-only journal, Shard_Index/Shard_Count
  // pick this process's stride partition of the enumerated space, Resume
  // replays completed points from the journal, Point_Deadline_Ms bounds
  // each design point's wall clock (0 = no watchdog), and Max_Attempts
  // is the bounded-retry budget before a failing point is quarantined.
  std::string sweep_checkpoint;
  int sweep_shard_index = 0;
  int sweep_shard_count = 1;
  bool sweep_resume = false;
  double sweep_deadline_ms = 0.0;
  int sweep_max_attempts = 2;

  // Cycle-level dataflow simulation ([cycle] section;
  // docs/PERFORMANCE.md): Enabled arms the tile-granular engine
  // (arch/cycle_sim.*) behind `sim --cycle` and the DSE stall/traffic
  // objectives. Dataflow picks the resident operand, Fill_Policy chooses
  // prefetch vs demand ifmap fills, the _KB keys size the per-bank
  // scratchpads, Bandwidth_GBps bounds each bank's backing store, and
  // Clock_GHz pins the cycle clock (0 = auto: the shortest pass spans
  // kAutoCyclesPerPass cycles). Max_Events caps the recorded timeline.
  bool cycle_enabled = false;
  Dataflow cycle_dataflow = Dataflow::kWeightStationary;
  FillPolicy cycle_fill_policy = FillPolicy::kPrefetch;
  double cycle_ifmap_kb = 32.0;
  double cycle_filter_kb = 256.0;
  double cycle_ofmap_kb = 32.0;
  double cycle_bandwidth_gbps = 8.0;
  double cycle_clock_ghz = 0.0;
  long cycle_max_events = 256;

  // Observability ([trace] section; docs/OBSERVABILITY.md): Enabled turns
  // the obs::Tracer on for the run, Output names the Chrome-trace JSON
  // file the CLI writes (empty = no file unless --trace overrides), and
  // Metrics gates the obs::Registry counters and the `metrics` block of
  // the JSON report. Tracing only observes — results never depend on it.
  bool trace_enabled = false;
  std::string trace_output;
  bool trace_metrics = true;

  // DC-solve options derived from the solver knobs above.
  [[nodiscard]] spice::DcOptions solver_options() const;

  // Returns the configured device with the resistance range and variation
  // applied.
  [[nodiscard]] tech::MemristorModel device() const;
  [[nodiscard]] tech::CmosTech cmos() const;

  // Effective parallelism for a crossbar with `columns` used columns.
  [[nodiscard]] int effective_parallelism(int columns) const;

  // Reference neuron for a network type (sigmoid / IF / ReLU; Sec. III-B.4).
  static circuit::NeuronKind neuron_for(nn::NetworkType type);

  // Reads the Table I keys from an INI config (keys spelled as the paper:
  // Interface_Number = [128,128], Crossbar_Size = 128, Cell_Type = 1T1R,
  // Memristor_Model = RRAM, Parallelism_Degree = 0, Resistance_Range =
  // [500, 500k-less-the-suffix]...). Unknown keys are ignored so user
  // configs can carry extra sections.
  static AcceleratorConfig from_config(const util::Config& config);

  void validate() const;
};

}  // namespace mnsim::arch
