#include "arch/scratchpad.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mnsim::arch {

const char* dataflow_name(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kWeightStationary:
      return "weight_stationary";
    case Dataflow::kInputStationary:
      return "input_stationary";
    case Dataflow::kOutputStationary:
      return "output_stationary";
  }
  throw std::logic_error("dataflow_name: unreachable");
}

const char* fill_policy_name(FillPolicy policy) {
  switch (policy) {
    case FillPolicy::kPrefetch:
      return "prefetch";
    case FillPolicy::kDemand:
      return "demand";
  }
  throw std::logic_error("fill_policy_name: unreachable");
}

std::optional<Dataflow> parse_dataflow(std::string_view name) {
  if (name == "weight_stationary" || name == "ws")
    return Dataflow::kWeightStationary;
  if (name == "input_stationary" || name == "is")
    return Dataflow::kInputStationary;
  if (name == "output_stationary" || name == "os")
    return Dataflow::kOutputStationary;
  return std::nullopt;
}

std::optional<FillPolicy> parse_fill_policy(std::string_view name) {
  if (name == "prefetch") return FillPolicy::kPrefetch;
  if (name == "demand") return FillPolicy::kDemand;
  return std::nullopt;
}

BackingChannel::BackingChannel(double bytes_per_cycle)
    : bytes_per_cycle_(bytes_per_cycle) {
  if (!(bytes_per_cycle > 0))
    throw std::invalid_argument("BackingChannel: bytes per cycle");
}

long BackingChannel::transfer(long earliest, double bytes) {
  if (bytes < 0) throw std::invalid_argument("BackingChannel: bytes");
  const long start = std::max(earliest, busy_until_);
  // Every transfer occupies at least one cycle: the bus grant itself is
  // not free, and a zero-length occupancy would let unbounded traffic
  // hide inside one cycle.
  const long duration =
      std::max<long>(1, static_cast<long>(std::ceil(bytes / bytes_per_cycle_)));
  busy_until_ = start + duration;
  busy_cycles_ += duration;
  return busy_until_;
}

Scratchpad::Scratchpad(long capacity_tiles) {
  if (capacity_tiles < 1)
    throw std::invalid_argument("Scratchpad: capacity must hold one tile");
  release_.assign(static_cast<std::size_t>(capacity_tiles), 0);
}

long Scratchpad::slot_free(long tile) const {
  if (tile < 0) throw std::invalid_argument("Scratchpad: tile");
  return release_[static_cast<std::size_t>(tile % capacity_tiles())];
}

void Scratchpad::release(long tile, long cycle) {
  if (tile < 0) throw std::invalid_argument("Scratchpad: tile");
  release_[static_cast<std::size_t>(tile % capacity_tiles())] = cycle;
}

}  // namespace mnsim::arch
