// On-chip training cost model (the paper's "on-chip training method"
// future-work item).
//
// Inference-only mapping writes each weight once; training rewrites them
// continuously, which reintroduces the high-writing-cost problem and the
// endurance limitation the inference design avoids (paper Sec. II-B.1).
// This model estimates, for SGD-style training of a mapped network:
//   * forward cost       — one inference pass per sample,
//   * backward cost      — the transposed matrix-vector products, charged
//                          as a multiple of the forward analog work,
//   * update cost        — programming pulses for the touched weights
//                          (row-parallel writes, `pulses_per_update`
//                          incremental pulses per touched cell), and
//   * endurance          — programming cycles consumed per cell against
//                          the device's endurance rating.
#pragma once

#include "arch/accelerator.hpp"

namespace mnsim::arch {

struct TrainingConfig {
  long samples = 60000;       // samples per epoch
  int epochs = 10;
  long batch_size = 32;       // weight update once per batch
  double update_fraction = 1.0;  // fraction of weights touched per update
  int pulses_per_update = 1;  // incremental programming pulses per touch
  double backward_cost_factor = 2.0;  // backward analog work vs forward

  void validate() const;
};

struct TrainingReport {
  long weight_updates = 0;        // total touched-cell programming events
  double update_energy = 0.0;     // [J] programming energy
  double update_latency = 0.0;    // [s] programming time (row-parallel)
  double compute_energy = 0.0;    // [J] forward + backward passes
  double compute_latency = 0.0;   // [s]
  double total_energy = 0.0;      // [J]
  double total_latency = 0.0;     // [s]
  // Programming cycles consumed per cell relative to device endurance;
  // > 1 means the device wears out before training finishes.
  double endurance_fraction = 0.0;
  long surviving_epochs = 0;      // epochs before the endurance budget
};

TrainingReport estimate_training(const nn::Network& network,
                                 const AcceleratorConfig& config,
                                 const TrainingConfig& training);

}  // namespace mnsim::arch
