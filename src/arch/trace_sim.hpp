// Discrete-event execution of the COMPUTE instruction stream.
//
// The analytic models (computation_bank / pipeline) predict latency and
// throughput in closed form; this simulator cross-checks them by actually
// scheduling every matrix-vector pass of one sample:
//   * within a bank, passes execute back-to-back (one pass in flight),
//   * across banks, pass k of bank b becomes ready once the upstream bank
//     has produced enough outputs — the Eq. 6 line-buffer warm-up plus a
//     proportional share of its remaining passes (streamed conv), or its
//     entire sample (conv feeding an FC bank).
// The result reports the sample makespan, per-bank busy times and
// utilizations, and a bounded event timeline for inspection.
#pragma once

#include "arch/accelerator.hpp"

namespace mnsim::arch {

struct TraceEvent {
  int bank = 0;
  long pass = 0;
  double start = 0.0;  // [s]
  double end = 0.0;    // [s]
};

struct TraceSimResult {
  double makespan = 0.0;               // one sample, pipelined dataflow [s]
  double serial_makespan = 0.0;        // strictly layer-by-layer [s]
  std::vector<double> bank_start;      // first pass start per bank
  std::vector<double> bank_finish;     // last pass end per bank
  std::vector<double> bank_busy;       // sum of pass latencies per bank
  std::vector<double> bank_utilization;  // busy / (finish - start)
  long total_passes = 0;
  // The first `max_recorded_events` events, for inspection/plotting.
  std::vector<TraceEvent> events;
};

TraceSimResult simulate_trace(const AcceleratorReport& report,
                              long max_recorded_events = 256);

}  // namespace mnsim::arch
