// Level-1: Accelerator (paper Sec. III-A, Fig. 1b).
//
// Cascaded computation banks (one per neuromorphic layer), framed by the
// input/output interface modules that stream samples over the limited
// bus wires (Interface_Number). The simulation accumulates bottom-up:
// areas and leakage add; the per-sample latency chains the banks (or, in
// the pipelined mode every multi-layer reference design uses, the
// pipeline cycle is the slowest bank's pass); the computing accuracy of
// the whole accelerator propagates layer-by-layer (Eq. 15) into the final
// worst/average digital error rates (Eq. 12-14).
#pragma once

#include <vector>

#include "arch/computation_bank.hpp"
#include "check/diagnostic.hpp"

namespace mnsim::arch {

// Area and per-sample dynamic energy by module class, aggregated from the
// representative full unit of each bank (edge units are approximated by
// the full-unit shares). Backs the paper's Sec. V-C observation that the
// read circuits take about half of the area and energy.
struct BreakdownItem {
  double area = 0.0;    // [m^2]
  double energy = 0.0;  // [J] per sample
};

struct AcceleratorBreakdown {
  BreakdownItem crossbars, input_dacs, read_circuits, decoders, digital,
      adder_trees, neurons, pooling, buffers, interfaces;

  [[nodiscard]] BreakdownItem total() const;
  // Share of the read path (MUX + subtract + ADC) in total area/energy.
  [[nodiscard]] double read_circuit_area_share() const;
  [[nodiscard]] double read_circuit_energy_share() const;
};

struct AcceleratorReport {
  std::vector<BankReport> banks;
  circuit::Ppa io_input, io_output, controller;

  double area = 0.0;             // [m^2]
  double leakage_power = 0.0;    // [W]
  double sample_latency = 0.0;   // one sample through all banks + I/O [s]
  double pipeline_cycle = 0.0;   // slowest bank pass (pipelined mode) [s]
  // Steady-state (pipelined) energy of one sample: each bank's dynamic
  // work plus its leakage over its own busy time. In a strictly serial
  // single-sample run the whole-chip leakage would additionally apply
  // for the full sample latency; multi-layer reference designs pipeline,
  // so the busy-time accounting is the paper's operating point.
  double energy_per_sample = 0.0;
  double power = 0.0;            // energy_per_sample / sample_latency

  // Propagated analog error rates at the accelerator output (Eq. 15).
  double epsilon_worst = 0.0;
  double epsilon_average = 0.0;
  // Digital error rates at the read-circuit quantization k = 2^output_bits.
  double max_error_rate = 0.0;   // Eq. 13
  double avg_error_rate = 0.0;   // Eq. 14 normalized
  double relative_accuracy = 0.0;  // 1 - avg_error_rate (Table II metric)

  long total_crossbars = 0;
  long total_units = 0;

  AcceleratorBreakdown breakdown;

  // Robustness: the fault configuration the run used (seed included, for
  // exact reproducibility) and the aggregated circuit-solver diagnostics
  // of every bank — degraded solves (CG retries, LU fallbacks, damped
  // Newton steps) are reported, never silent.
  fault::FaultConfig fault_config;
  spice::SolverDiagnostics solver;

  // Pre-flight analyzer findings that did not block the run (warnings,
  // notes); errors throw check::CheckError before any bank is built.
  // Rendered in the text report and the JSON "diagnostics" array.
  std::vector<check::Diagnostic> diagnostics;
};

AcceleratorReport simulate_accelerator(const nn::Network& network,
                                       const AcceleratorConfig& config);

// Heterogeneous variant: one configuration per computation bank (per
// weighted layer, in network order). All accelerator-level parameters
// (interfaces, bus) come from the first entry. Throws when the
// configuration count does not match the network depth.
AcceleratorReport simulate_accelerator(
    const nn::Network& network,
    const std::vector<AcceleratorConfig>& per_bank_configs);

}  // namespace mnsim::arch
