// Instruction set and controller (paper Sec. III-D).
//
// The reference design supports the three basic instructions of an
// application-specific memristor accelerator: WRITE (program cells), READ
// (memory read-back), and COMPUTE (one matrix-vector pass of a bank).
// generate_inference_trace emits the instruction stream for processing
// one input sample on a mapped network; generate_program_trace emits the
// one-time weight-programming stream. Customized instruction sets replace
// this module without touching the simulation flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "circuit/module.hpp"
#include "nn/network.hpp"

namespace mnsim::arch {

enum class Opcode : std::uint8_t { kWrite, kRead, kCompute };

struct Instruction {
  Opcode opcode = Opcode::kCompute;
  int bank = 0;       // computation bank index
  long unit = 0;      // unit index inside the bank (-1 = all units)
  long address = 0;   // cell/row address for READ/WRITE; pass index for
                      // COMPUTE
  long length = 0;    // cells written / values read / passes

  [[nodiscard]] std::string to_string() const;
};

// One COMPUTE per bank per matrix-vector pass of one sample.
std::vector<Instruction> generate_inference_trace(
    const nn::Network& network, const AcceleratorConfig& config);

// WRITE instructions covering every programmed cell (unit-granular).
std::vector<Instruction> generate_program_trace(
    const nn::Network& network, const AcceleratorConfig& config);

// Total programming time for a trace: cells are written level-serially,
// one row at a time per crossbar (paper Sec. II-C: memory-style single
// selection during WRITE).
double program_latency(const std::vector<Instruction>& trace,
                       const AcceleratorConfig& config);

// Controller hardware: instruction register + decoder + FSM.
circuit::Ppa controller_ppa(const AcceleratorConfig& config);

}  // namespace mnsim::arch
